"""The offline calibration fitter (``repro calibrate``).

Ordinary least squares over trace samples: each sample contributes one
row ``seconds ≈ Σ_kind weight(kind) · units(kind)`` (the per-record
overhead rides on the :data:`~repro.profiling.features.RECORD_KIND`
axis, so there is no separate intercept).  Everything is standard
library — the normal equations are solved by Gaussian elimination with
partial pivoting and a tiny ridge term for kinds the trace never
exercises, which keeps the system non-singular without biasing
well-supported weights.

Diagnostics reported on the fitted model:

* **R²** against the sample mean (1.0 = the weights explain all timing
  variance in the trace);
* **residuals** — mean and max absolute prediction error in seconds;
* **per-kind standard errors** (``σ̂·√((XᵀX)⁻¹_kk)``) and **support**
  (how many samples exercised the kind at all) — the inputs to
  :meth:`CalibratedCostModel.confidence`;
* sample and per-backend counts.

Negative fitted weights (collinear features on a small trace) are
clamped to zero — a *cost* weight below zero would make the planner
prefer inserting work — and the clamp is visible as ``stderr`` staying
honest about the uncertain kind.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .features import OP_KINDS, RECORD_KIND
from .model import CalibratedCostModel
from .trace import TraceSample, trace_fingerprint

__all__ = ["fit_calibration"]

# Ridge added to the normal equations' diagonal: small enough to leave
# supported weights untouched (their diagonal entries are >= 1), large
# enough to pin never-exercised kinds at ~0 instead of exploding.
_RIDGE = 1e-9


def _solve(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting (in place on copies)."""

    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-300:
            raise ValueError("singular calibration system")
        a[col], a[pivot] = a[pivot], a[col]
        inv = 1.0 / a[col][col]
        for r in range(n):
            if r != col and a[r][col] != 0.0:
                factor = a[r][col] * inv
                for c in range(col, n + 1):
                    a[r][c] -= factor * a[col][c]
    return [a[i][n] / a[i][i] for i in range(n)]


def _invert_diagonal(matrix: List[List[float]]) -> List[float]:
    """The diagonal of ``matrix⁻¹`` (one solve per basis vector)."""

    n = len(matrix)
    diag: List[float] = []
    for i in range(n):
        basis = [1.0 if j == i else 0.0 for j in range(n)]
        diag.append(_solve(matrix, basis)[i])
    return diag


def fit_calibration(samples: Sequence[TraceSample]) -> CalibratedCostModel:
    """Least-squares per-operation weights from a profiling trace."""

    if not samples:
        raise ValueError("cannot calibrate from an empty trace")

    kinds: List[str] = list(OP_KINDS) + [RECORD_KIND]
    index = {kind: i for i, kind in enumerate(kinds)}
    p = len(kinds)

    # Normal equations: A = XᵀX (+ ridge·I), b = Xᵀy.
    a = [[0.0] * p for _ in range(p)]
    b = [0.0] * p
    support = {kind: 0 for kind in kinds}
    backends: Dict[str, int] = {}
    rows: List[List[float]] = []
    y: List[float] = []
    for sample in samples:
        row = [0.0] * p
        for kind, amount in sample.units.items():
            i = index.get(kind)
            if i is not None and amount:
                row[i] = amount
                support[kind] += 1
        rows.append(row)
        y.append(sample.seconds)
        backends[sample.backend] = backends.get(sample.backend, 0) + 1
        for i in range(p):
            if row[i]:
                b[i] += row[i] * sample.seconds
                for j in range(p):
                    if row[j]:
                        a[i][j] += row[i] * row[j]
    for i in range(p):
        a[i][i] += _RIDGE

    solution = _solve(a, b)
    weights = {kind: max(0.0, solution[index[kind]]) for kind in kinds}

    # Residual diagnostics against the *clamped* weights — the ones the
    # planner will actually use.
    n = len(samples)
    residuals = []
    for row, observed in zip(rows, y):
        predicted = sum(
            weights[kind] * row[index[kind]] for kind in kinds if row[index[kind]]
        )
        residuals.append(observed - predicted)
    ss_res = sum(r * r for r in residuals)
    mean_y = sum(y) / n
    ss_tot = sum((v - mean_y) ** 2 for v in y)
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0

    dof = max(1, n - p)
    sigma2 = ss_res / dof
    try:
        inv_diag = _invert_diagonal(a)
    except ValueError:
        inv_diag = [float("inf")] * p
    stderr = {
        kind: (sigma2 * max(0.0, inv_diag[index[kind]])) ** 0.5 for kind in kinds
    }

    return CalibratedCostModel(
        weights=weights,
        r2=r2,
        residual_abs_mean=sum(abs(r) for r in residuals) / n,
        residual_abs_max=max(abs(r) for r in residuals),
        stderr=stderr,
        support=support,
        samples=n,
        backends=backends,
        fitted_at=max(sample.ts for sample in samples),
        trace_fingerprint=trace_fingerprint(samples),
        source="fit",
    )
