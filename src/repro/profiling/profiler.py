"""The sampling micro-profiler, hooked into all three backends.

A :class:`Profiler` rides on :class:`repro.config.ExecutionConfig`
(``profiler=``) and observes UDF execution at two grains:

* **per-record runners** (interp and compiled backends):
  :meth:`wrap_runner` is applied by :func:`repro.lang.compile.make_runner`
  around the runner it returns, timing every ``sample_every``-th
  invocation;
* **column batches** (vectorized backend): the dataflow operators call
  :meth:`record_batch` per flushed batch, which samples whole batches at
  the same rate.

Every sample pairs the observed wall seconds with the program's static
per-operation-kind unit vector (:func:`repro.profiling.features.program_units`)
and lands in the JSONL :class:`~repro.profiling.trace.TraceStore`.

Zero-cost-when-off discipline (the telemetry/provenance NULL-twin
pattern): the default config carries no profiler at all, so
``make_runner`` returns the unwrapped runner and the operators skip the
batch hook after one attribute read — nothing per *record* changes.
:data:`NULL_PROFILER` exists for call sites that want an always-valid
handle; its hooks are inert and ``wrap_runner`` is the identity.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

from ..lang.ast import Program
from ..lang.functions import FunctionTable
from .features import RECORD_KIND, program_units
from .trace import TraceSample, TraceStore

__all__ = ["Profiler", "NullProfiler", "NULL_PROFILER"]

# The runner signature make_runner hands back: args -> RunResult.  Typed
# loosely because the interpreter's RunResult is a legacy (unchecked)
# module; the profiler only reads ``.cost``.
Runner = Callable[[Mapping[str, object]], object]


class Profiler:
    """Samples backend executions into a persistent trace store."""

    enabled = True

    def __init__(
        self,
        store: TraceStore,
        *,
        domain: str = "unknown",
        sample_every: int = 32,
    ) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be an integer >= 1, got {sample_every!r}"
            )
        self.store = store
        self.domain = domain
        self.sample_every = sample_every
        self.samples_taken = 0
        self._tick = 0
        self._lock = threading.Lock()
        # Keyed by id(program) with the program kept alive in the value,
        # so a recycled id cannot alias a dead entry.
        self._units: Dict[int, Tuple[Program, Dict[str, float]]] = {}

    # -- sampling ------------------------------------------------------------

    def _due(self) -> bool:
        # A benign race on the tick under threads only shifts which
        # invocation gets sampled; the rate stays ~1/sample_every.
        self._tick += 1
        return self._tick % self.sample_every == 0

    def units_for(
        self, program: Program, functions: Optional[FunctionTable]
    ) -> Dict[str, float]:
        key = id(program)
        cached = self._units.get(key)
        if cached is not None and cached[0] is program:
            return cached[1]
        units = program_units(program, functions)
        with self._lock:
            self._units[key] = (program, units)
        return units

    def record(
        self,
        program: Program,
        functions: Optional[FunctionTable],
        backend: str,
        seconds: float,
        cost_units: int,
        records: int = 1,
    ) -> None:
        """Append one sample covering ``records`` executions of ``program``."""

        per_record = self.units_for(program, functions)
        if records == 1:
            units: Dict[str, float] = dict(per_record)
        else:
            units = {k: v * records for k, v in per_record.items()}
            units[RECORD_KIND] = float(records)
        self.samples_taken += 1
        self.store.append(
            TraceSample(
                pid=program.pid,
                backend=backend,
                domain=self.domain,
                units=units,
                cost_units=cost_units,
                seconds=seconds,
                records=records,
                ts=time.time(),
            )
        )

    # -- backend hooks -------------------------------------------------------

    def wrap_runner(
        self,
        runner: Runner,
        program: Program,
        functions: Optional[FunctionTable],
        backend: str,
    ) -> Runner:
        """The per-record hook: time every ``sample_every``-th invocation."""

        def _profiled(args: Mapping[str, object]) -> object:
            if not self._due():
                return runner(args)
            started = time.perf_counter()
            result = runner(args)
            elapsed = time.perf_counter() - started
            self.record(
                program,
                functions,
                backend,
                elapsed,
                int(getattr(result, "cost", 0)),
            )
            return result

        return _profiled

    def record_batch(
        self,
        program: Program,
        functions: Optional[FunctionTable],
        seconds: float,
        cost_units: int,
        records: int,
    ) -> None:
        """The vectorized hook: sample whole column batches at the same rate."""

        if records > 0 and self._due():
            self.record(
                program, functions, "vectorized", seconds, cost_units, records
            )


class NullProfiler:
    """The zero-cost twin: identity hooks, ``enabled`` is False."""

    __slots__ = ()
    enabled = False
    samples_taken = 0

    def units_for(
        self, program: Program, functions: Optional[FunctionTable]
    ) -> Dict[str, float]:
        return {}

    def record(
        self,
        program: Program,
        functions: Optional[FunctionTable],
        backend: str,
        seconds: float,
        cost_units: int,
        records: int = 1,
    ) -> None:
        pass

    def wrap_runner(
        self,
        runner: Runner,
        program: Program,
        functions: Optional[FunctionTable],
        backend: str,
    ) -> Runner:
        return runner

    def record_batch(
        self,
        program: Program,
        functions: Optional[FunctionTable],
        seconds: float,
        cost_units: int,
        records: int,
    ) -> None:
        pass


NULL_PROFILER = NullProfiler()

AnyProfiler = Union[Profiler, NullProfiler]
