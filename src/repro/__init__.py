"""repro — a reproduction of "Consolidation of Queries with User-Defined
Functions" (Sousa, Dillig, Vytiniotis, Dillig, Gkantsidis; PLDI 2014).

Public API tour:

* :mod:`repro.lang` — the consolidation language (Fig 1) and its
  cost-annotated interpreter (Fig 2);
* :mod:`repro.frontend` — write UDFs as restricted Python functions;
* :mod:`repro.smt` — the built-in QF_UFLIA solver (Z3 substitute);
* :mod:`repro.analysis` — strongest postconditions, loop invariants;
* :mod:`repro.consolidation` — the calculus and algorithm (Figs 3/5/7/8),
  the divide-and-conquer driver, and the dynamic Theorem 1 checker;
* :mod:`repro.naiad` — the mini timely-dataflow engine with the
  ``whereMany`` / ``whereConsolidated`` operators (Section 6.1);
* :mod:`repro.datasets` / :mod:`repro.queries` — the five evaluation
  domains and their query families (Section 6.2);
* :mod:`repro.experiments` — Figure 9 / Figure 10 harnesses.

Quick start::

    from repro import consolidate, translate_udf

    merged = consolidate([udf1, udf2], functions)
"""

from .consolidation import (
    ConsolidationOptions,
    ConsolidationReport,
    Consolidator,
    check_soundness,
    consolidate_all,
)
from .frontend import TranslationError, translate_source, translate_udf
from .lang import (
    CostModel,
    FunctionTable,
    Interpreter,
    LibraryFunction,
    Program,
    parse_program,
    program_to_str,
    run_program,
    run_sequentially,
)
from .naiad import from_collection, run_where_consolidated, run_where_many

__version__ = "1.0.0"


def consolidate(programs, functions, **kwargs):
    """Merge a batch of UDF programs into one (divide-and-conquer).

    Convenience wrapper around
    :func:`repro.consolidation.divide_conquer.consolidate_all`; returns the
    merged :class:`~repro.lang.ast.Program`.
    """

    return consolidate_all(list(programs), functions, **kwargs).program
