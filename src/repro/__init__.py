"""repro — a reproduction of "Consolidation of Queries with User-Defined
Functions" (Sousa, Dillig, Vytiniotis, Dillig, Gkantsidis; PLDI 2014).

Public API tour:

* :mod:`repro.lang` — the consolidation language (Fig 1) and its
  cost-annotated interpreter (Fig 2);
* :mod:`repro.frontend` — write UDFs as restricted Python functions;
* :mod:`repro.smt` — the built-in QF_UFLIA solver (Z3 substitute);
* :mod:`repro.analysis` — strongest postconditions, loop invariants;
* :mod:`repro.consolidation` — the calculus and algorithm (Figs 3/5/7/8),
  the divide-and-conquer driver, and the dynamic Theorem 1 checker;
* :mod:`repro.naiad` — the mini timely-dataflow engine with the
  ``whereMany`` / ``whereConsolidated`` operators (Section 6.1);
* :mod:`repro.datasets` / :mod:`repro.queries` — the five evaluation
  domains and their query families (Section 6.2);
* :mod:`repro.experiments` — Figure 9 / Figure 10 harnesses;
* :mod:`repro.api` — the stable five-verb facade (``consolidate``,
  ``run``, ``register``, ``unregister``, ``explain``) shared by the CLI
  and the service;
* :mod:`repro.service` — consolidation as a long-running service:
  dynamic query registry, plan cache, incremental re-consolidation,
  ``repro serve`` + a typed HTTP client;
* :mod:`repro.config` / :mod:`repro.telemetry` — the one-object run
  configuration (:class:`ExecutionConfig`) and the observability layer
  (:class:`Telemetry`, metrics registry, tracing spans, sinks).

Quick start::

    import repro

    ds = repro.generate_weather(cities=50)
    programs = [repro.parse(src1), repro.parse(src2)]
    merged = repro.consolidate(programs, ds.functions)

    cfg = repro.ExecutionConfig(telemetry=repro.Telemetry.capture())
    result = repro.run_where_many(ds.rows, programs, ds.functions, config=cfg)
"""

from .config import ExecutionConfig, ServiceConfig
from .consolidation import (
    ConsolidationOptions,
    ConsolidationReport,
    Consolidator,
    check_soundness,
    consolidate_all,
)
from .datasets import (
    Dataset,
    generate_flights,
    generate_news,
    generate_stocks,
    generate_twitter,
    generate_weather,
)
from .frontend import TranslationError, translate_source, translate_udf
from .lang import (
    CostModel,
    FunctionTable,
    Interpreter,
    LibraryFunction,
    Program,
    parse_program,
    program_to_str,
    run_program,
    run_sequentially,
)
from .lang.builder import (
    add,
    and_,
    arg,
    assign,
    block,
    call,
    conj,
    disj,
    eq,
    ge,
    gt,
    if_,
    ite_notify,
    le,
    lift,
    lt,
    mul,
    ne,
    not_,
    notify,
    or_,
    program,
    sub,
    var,
    while_,
)
from .naiad import Query, from_collection, run_where_consolidated, run_where_many
from . import api
from .telemetry import (
    InMemorySink,
    JsonlFileSink,
    MetricsRegistry,
    NULL_TELEMETRY,
    PrometheusTextSink,
    Telemetry,
    Tracer,
    prometheus_text,
)

__version__ = "1.2.0"

# ``parse`` is the friendly alias for the concrete-syntax parser.
parse = parse_program

__all__ = [
    # the stable five-verb facade (register/unregister/consolidate/run/explain)
    "api",
    # configuration + observability
    "ExecutionConfig",
    "ServiceConfig",
    "Telemetry",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "Tracer",
    "InMemorySink",
    "JsonlFileSink",
    "PrometheusTextSink",
    "prometheus_text",
    # language
    "Program",
    "CostModel",
    "FunctionTable",
    "LibraryFunction",
    "Interpreter",
    "parse",
    "parse_program",
    "program_to_str",
    "run_program",
    "run_sequentially",
    # program builder
    "add",
    "and_",
    "arg",
    "assign",
    "block",
    "call",
    "conj",
    "disj",
    "eq",
    "ge",
    "gt",
    "if_",
    "ite_notify",
    "le",
    "lift",
    "lt",
    "mul",
    "ne",
    "not_",
    "notify",
    "or_",
    "program",
    "sub",
    "var",
    "while_",
    # python frontend
    "translate_udf",
    "translate_source",
    "TranslationError",
    # consolidation
    "consolidate",
    "consolidate_all",
    "ConsolidationOptions",
    "ConsolidationReport",
    "Consolidator",
    "check_soundness",
    # dataflow
    "Query",
    "from_collection",
    "run_where_many",
    "run_where_consolidated",
    # datasets
    "Dataset",
    "generate_weather",
    "generate_flights",
    "generate_news",
    "generate_twitter",
    "generate_stocks",
]


def consolidate(programs, functions, **kwargs):
    """Merge a batch of UDF programs into one (divide-and-conquer).

    Convenience wrapper around
    :func:`repro.consolidation.divide_conquer.consolidate_all`; returns the
    merged :class:`~repro.lang.ast.Program`.
    """

    return consolidate_all(list(programs), functions, **kwargs).program
