"""The measurement harness behind Figures 9 and 10.

One experiment = one (dataset, UDF batch) pair measured under both
operators:

* ``whereMany``          — read once, run every UDF per record;
* ``whereConsolidated``  — consolidate the batch, run the merged UDF.

Reported quantities mirror the paper's:

* **UDF speedup** — ratio of cost-clock units spent inside UDFs (the dark
  bars of Figure 9); also reported in wall-clock.
* **Total speedup** — ratio including IO and engine overhead (light bars);
  the consolidated side's wall-clock total *includes consolidation time*,
  exactly as in Section 6.3.
* **Consolidation time** and its fraction of total query time (the paper
  reports 0.3 s / 0.4 % for 50 UDFs).

The harness verifies output equality (both operators must select the same
rows per query) and Theorem 1 on the sampled rows before reporting any
numbers — an experiment with a soundness violation raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..config import ExecutionConfig, resolve_config
from ..consolidation.algorithm import ConsolidationOptions
from ..datasets.records import Dataset
from ..lang.ast import Program
from ..lang.cost import CostModel
from ..naiad.linq import run_where_consolidated, run_where_many

__all__ = ["ExperimentResult", "SoundnessError", "run_experiment"]


class SoundnessError(AssertionError):
    """whereMany and whereConsolidated disagreed — consolidation bug."""


@dataclass
class ExperimentResult:
    """All measurements for one (domain, family, n) experiment."""

    domain: str
    family: str
    n_udfs: int
    rows: int

    many_udf_cost: int
    cons_udf_cost: int
    many_total_cost: int
    cons_total_cost: int
    many_wall: float
    cons_wall: float
    consolidation_seconds: float
    merged_program_size: int = 0
    pair_consolidations: int = 0
    simplify_stats: dict = field(default_factory=dict)
    validations_certified: int = 0
    validations_total: int = 0
    executor: str = "serial"
    metrics: dict = field(default_factory=dict)

    @property
    def smt_skips(self) -> int:
        """Entailment queries decided without the solver (pre-check skips)."""

        return int(self.simplify_stats.get("precheck_skips", 0))

    @property
    def udf_speedup(self) -> float:
        return self.many_udf_cost / max(1, self.cons_udf_cost)

    @property
    def total_speedup(self) -> float:
        return self.many_total_cost / max(1, self.cons_total_cost)

    @property
    def udf_speedup_wall(self) -> float:
        return self.many_wall / max(1e-9, self.cons_wall)

    @property
    def total_speedup_wall(self) -> float:
        """Wall-clock speedup with consolidation time charged to the merged side."""

        return self.many_wall / max(1e-9, self.cons_wall + self.consolidation_seconds)

    @property
    def consolidation_fraction(self) -> float:
        """Consolidation time as a fraction of consolidated total wall time."""

        denom = self.cons_wall + self.consolidation_seconds
        return self.consolidation_seconds / denom if denom else 0.0

    def row(self) -> dict:
        return {
            "domain": self.domain,
            "family": self.family,
            "n": self.n_udfs,
            "rows": self.rows,
            "udf_speedup": round(self.udf_speedup, 2),
            "total_speedup": round(self.total_speedup, 2),
            "consolidation_s": round(self.consolidation_seconds, 3),
            "consolidation_frac": round(self.consolidation_fraction, 4),
            "smt_skips": self.smt_skips,
            "smt_queries": int(self.simplify_stats.get("smt_queries", 0)),
            "memo_hits": int(self.simplify_stats.get("memo_hits", 0)),
            "validated": f"{self.validations_certified}/{self.validations_total}",
        }


def run_experiment(
    dataset: Dataset,
    programs: Sequence[Program],
    family: str = "?",
    row_limit: int | None = None,
    workers: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    options: ConsolidationOptions | None = None,
    io_cost_per_record: Optional[int] = None,
    backend: Optional[str] = None,
    config: ExecutionConfig | None = None,
) -> ExperimentResult:
    """Measure one batch under both operators; raises on any disagreement.

    With a live ``config.telemetry`` each experiment runs against a child
    registry, so the result carries a metrics snapshot *for this experiment
    only* while the parent registry still aggregates the whole batch.
    """

    cfg = resolve_config(
        config,
        workers=workers,
        cost_model=cost_model,
        io_cost_per_record=io_cost_per_record,
        backend=backend,
    )
    local = cfg.telemetry.child()
    run_cfg = cfg if local is cfg.telemetry else cfg.evolve(telemetry=local)

    rows = dataset.rows if row_limit is None else dataset.rows[:row_limit]

    many = run_where_many(rows, programs, dataset.functions, config=run_cfg)
    cons, report = run_where_consolidated(
        rows, programs, dataset.functions, options=options, config=run_cfg
    )

    if many.buckets != cons.buckets:
        diff = {
            pid: (len(many.buckets.get(pid, [])), len(cons.buckets.get(pid, [])))
            for pid in set(many.buckets) | set(cons.buckets)
            if many.buckets.get(pid) != cons.buckets.get(pid)
        }
        raise SoundnessError(f"{dataset.name}/{family}: outputs differ: {diff}")
    if cons.metrics.udf_cost > many.metrics.udf_cost:
        raise SoundnessError(
            f"{dataset.name}/{family}: consolidated UDF cost "
            f"{cons.metrics.udf_cost} exceeds sequential {many.metrics.udf_cost}"
        )

    from ..lang.visitors import stmt_size

    metrics_snapshot = local.metrics.snapshot() if local.enabled else {}
    cfg.telemetry.absorb(local)

    return ExperimentResult(
        domain=dataset.name,
        family=family,
        n_udfs=len(programs),
        rows=len(rows),
        many_udf_cost=many.metrics.udf_cost,
        cons_udf_cost=cons.metrics.udf_cost,
        many_total_cost=many.metrics.total_cost,
        cons_total_cost=cons.metrics.total_cost,
        many_wall=many.metrics.wall_seconds,
        cons_wall=cons.metrics.wall_seconds,
        consolidation_seconds=report.duration,
        merged_program_size=stmt_size(report.program.body),
        pair_consolidations=report.pair_consolidations,
        simplify_stats=dict(report.simplify_stats),
        validations_certified=sum(1 for v in report.validations if v.certified),
        validations_total=len(report.validations),
        executor=report.executor,
        metrics=metrics_snapshot,
    )
