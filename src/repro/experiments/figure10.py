"""Figure 10: scalability with the number of UDFs (News mixes).

The paper plots, against the number of UDFs (log-scale y):

* ``whereMany`` UDF and total time — growing roughly linearly,
* ``whereConsolidated`` UDF and total time — staying roughly constant,
* consolidation time — growing with n but < 1 s at 300 UDFs.

:func:`run_figure10` reproduces all five series on the News BC mixes.
Times are reported both in deterministic cost-clock units (the primary,
noise-free signal) and wall-clock seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..config import ExecutionConfig, resolve_config
from ..consolidation.algorithm import ConsolidationOptions
from ..datasets import generate_news
from ..queries import DOMAIN_QUERIES
from .harness import ExperimentResult, run_experiment

__all__ = ["ScalabilityPoint", "Figure10Report", "run_figure10", "DEFAULT_SWEEP"]

DEFAULT_SWEEP = (10, 25, 50, 100, 150, 200, 250, 300)


@dataclass
class ScalabilityPoint:
    n_udfs: int
    many_udf_cost: int
    many_total_cost: int
    cons_udf_cost: int
    cons_total_cost: int
    many_wall: float
    cons_wall: float
    consolidation_seconds: float

    @staticmethod
    def from_result(r: ExperimentResult) -> "ScalabilityPoint":
        return ScalabilityPoint(
            n_udfs=r.n_udfs,
            many_udf_cost=r.many_udf_cost,
            many_total_cost=r.many_total_cost,
            cons_udf_cost=r.cons_udf_cost,
            cons_total_cost=r.cons_total_cost,
            many_wall=r.many_wall,
            cons_wall=r.cons_wall,
            consolidation_seconds=r.consolidation_seconds,
        )


@dataclass
class Figure10Report:
    points: list[ScalabilityPoint] = field(default_factory=list)

    def growth_ratios(self) -> dict:
        """How each series scales from the first to the last sweep point.

        The paper's claim: whereMany grows ~linearly with n while
        whereConsolidated stays roughly constant.
        """

        first, last = self.points[0], self.points[-1]
        n_ratio = last.n_udfs / first.n_udfs
        return {
            "n_ratio": n_ratio,
            "many_total_growth": last.many_total_cost / max(1, first.many_total_cost),
            "cons_total_growth": last.cons_total_cost / max(1, first.cons_total_cost),
            "many_udf_growth": last.many_udf_cost / max(1, first.many_udf_cost),
            "cons_udf_growth": last.cons_udf_cost / max(1, first.cons_udf_cost),
        }


def run_figure10(
    sweep: Sequence[int] = DEFAULT_SWEEP,
    articles: int = 400,
    family: str = "BC",
    seed: int = 1,
    workers: Optional[int] = None,
    options: ConsolidationOptions | None = None,
    backend: Optional[str] = None,
    config: ExecutionConfig | None = None,
) -> Figure10Report:
    """Sweep the number of News-mix UDFs; returns all five series."""

    cfg = resolve_config(config, workers=workers, backend=backend)
    dataset = generate_news(articles=articles)
    module = DOMAIN_QUERIES["news"]
    report = Figure10Report()
    for n in sweep:
        programs = module.make_batch(dataset, family, n=n, seed=seed)
        result = run_experiment(
            dataset, programs, family=family, options=options, config=cfg
        )
        report.points.append(ScalabilityPoint.from_result(result))
    return report
