"""Latency-aware consolidation (the paper's Section 8 extension).

The paper's consolidation optimises *job completion time*; Section 8 notes
that latency-critical settings may additionally want a query execution
order so that consolidation "does not increase the response time of any
individual query", and footnote 2 already broadcasts each result as soon
as it is computed to minimise latency.

This experiment quantifies exactly that:

* **per-query latency** — the cumulative execution cost at the moment a
  query's result is broadcast (``RunResult.notification_costs``), averaged
  over the dataset;
* three strategies — the sequential baseline (query *i* waits for queries
  ``1..i-1``), the default divide-and-conquer consolidation, and the
  priority-ordered fold (``order='priority'``) that pins chosen queries to
  the front of the merged program.

The headline observations mirror the paper's discussion: consolidation
slashes *average* latency (everything finishes earlier because everything
costs less), and the priority order additionally bounds the latency of the
designated queries near the front of the merged program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..config import ExecutionConfig, resolve_config
from ..consolidation.algorithm import ConsolidationOptions
from ..consolidation.divide_conquer import consolidate_all
from ..datasets.records import Dataset
from ..lang.ast import Program
from ..lang.compile import DEFAULT_BACKEND, make_runner
from ..lang.cost import CostModel
from ..lang.interp import combine_sequential

__all__ = ["LatencyReport", "run_latency_experiment"]


@dataclass
class LatencyReport:
    """Average per-query broadcast latencies under each strategy."""

    n_udfs: int
    rows: int
    sequential: dict[str, float] = field(default_factory=dict)
    consolidated: dict[str, float] = field(default_factory=dict)
    prioritized: dict[str, float] = field(default_factory=dict)
    priority: tuple[str, ...] = ()

    def mean(self, table: dict[str, float]) -> float:
        return sum(table.values()) / len(table) if table else 0.0

    def summary(self) -> dict:
        out = {
            "sequential_mean": round(self.mean(self.sequential), 1),
            "consolidated_mean": round(self.mean(self.consolidated), 1),
            "prioritized_mean": round(self.mean(self.prioritized), 1),
        }
        for pid in self.priority:
            out[f"{pid}_sequential"] = round(self.sequential[pid], 1)
            out[f"{pid}_consolidated"] = round(self.consolidated[pid], 1)
            out[f"{pid}_prioritized"] = round(self.prioritized[pid], 1)
        return out


def _average_latencies(
    programs_or_merged,
    pids: Sequence[str],
    rows: Sequence[object],
    functions,
    cost_model: CostModel,
    merged: bool,
    backend: str = DEFAULT_BACKEND,
) -> dict[str, float]:
    totals = {pid: 0 for pid in pids}
    if merged:
        runners = [make_runner(programs_or_merged, functions, cost_model, backend=backend)]
        param = programs_or_merged.params[0]
    else:
        runners = [
            make_runner(p, functions, cost_model, backend=backend)
            for p in programs_or_merged
        ]
        param = programs_or_merged[0].params[0]
    for row in rows:
        args = {param: row}
        if merged:
            result = runners[0](args)
        else:
            result = combine_sequential(run(args) for run in runners)
        for pid in pids:
            totals[pid] += result.notification_costs[pid]
    return {pid: totals[pid] / len(rows) for pid in pids}


def run_latency_experiment(
    dataset: Dataset,
    programs: list[Program],
    priority: Sequence[str] = (),
    row_limit: int | None = 100,
    cost_model: Optional[CostModel] = None,
    options: ConsolidationOptions | None = None,
    backend: Optional[str] = None,
    config: ExecutionConfig | None = None,
) -> LatencyReport:
    """Measure per-query broadcast latencies under the three strategies."""

    cfg = resolve_config(config, cost_model=cost_model, backend=backend)
    rows = dataset.rows if row_limit is None else dataset.rows[:row_limit]
    pids = [p.pid for p in programs]

    merged_default = consolidate_all(
        programs, dataset.functions, cfg.cost_model, options, config=cfg
    ).program
    merged_priority = consolidate_all(
        programs,
        dataset.functions,
        cfg.cost_model,
        options,
        order="priority",
        priority=priority,
        config=cfg,
    ).program

    return LatencyReport(
        n_udfs=len(programs),
        rows=len(rows),
        sequential=_average_latencies(
            programs, pids, rows, dataset.functions, cfg.cost_model, merged=False, backend=cfg.backend
        ),
        consolidated=_average_latencies(
            merged_default, pids, rows, dataset.functions, cfg.cost_model, merged=True, backend=cfg.backend
        ),
        prioritized=_average_latencies(
            merged_priority, pids, rows, dataset.functions, cfg.cost_model, merged=True, backend=cfg.backend
        ),
        priority=tuple(priority),
    )
