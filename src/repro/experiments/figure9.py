"""Figure 9: UDF and total speedups across all five domains.

The paper's bar chart has one pair of bars (UDF speedup, total speedup)
per (domain, family) experiment, 50 UDFs each:

* Weather  Q1 Q2 Q3 Q4 Mix
* Flight   Q1 Q2 Q3 Mix
* News     Q1 Q2 Q3 BC
* Twitter  Q1 Q2 Q3 BC
* Stock    Q1 Q2 Q3 BC

and the text reports the aggregates: UDF speedups 2.6x-24.2x (avg 8.4x),
total 1.4x-23.1x (avg 6.0x), consolidation ~0.3 s for 50 UDFs (~0.4 % of
total query time).

:func:`run_figure9` regenerates every bar with this repository's engine.
``scale`` shrinks the datasets/rows for quick runs (speedups are ratios,
so the bar *shape* is row-count independent); ``scale=1.0`` is the paper's
cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import ExecutionConfig, resolve_config
from ..consolidation.algorithm import ConsolidationOptions
from ..datasets import (
    generate_flights,
    generate_news,
    generate_stocks,
    generate_twitter,
    generate_weather,
)
from ..queries import DOMAIN_QUERIES
from .harness import ExperimentResult, run_experiment

__all__ = ["Figure9Report", "run_figure9", "DOMAIN_ORDER"]

DOMAIN_ORDER = ["weather", "flight", "news", "twitter", "stock"]


@dataclass
class Figure9Report:
    results: list[ExperimentResult] = field(default_factory=list)

    @property
    def udf_speedups(self) -> list[float]:
        return [r.udf_speedup for r in self.results]

    @property
    def total_speedups(self) -> list[float]:
        return [r.total_speedup for r in self.results]

    def aggregates(self) -> dict:
        """The summary statistics Section 6.3 quotes."""

        udf = self.udf_speedups
        total = self.total_speedups
        cons = [r.consolidation_seconds for r in self.results]
        frac = [r.consolidation_fraction for r in self.results]
        skips = sum(r.smt_skips for r in self.results)
        return {
            "smt_precheck_skips": skips,
            "udf_min": min(udf),
            "udf_max": max(udf),
            "udf_avg": sum(udf) / len(udf),
            "total_min": min(total),
            "total_max": max(total),
            "total_avg": sum(total) / len(total),
            "consolidation_avg_s": sum(cons) / len(cons),
            "consolidation_frac_avg": sum(frac) / len(frac),
        }


def make_datasets(scale: float = 1.0) -> dict:
    """The five evaluation datasets, optionally scaled down uniformly."""

    def n(full: int, minimum: int = 20) -> int:
        return max(minimum, int(full * scale))

    return {
        "weather": generate_weather(cities=n(500)),
        "flight": generate_flights(airlines=n(500)),
        "news": generate_news(articles=n(19043)),
        "twitter": generate_twitter(tweets=n(31152)),
        "stock": generate_stocks(companies=n(100), total_daily_rows=n(377423, 2000)),
    }


def run_figure9(
    n_udfs: int = 50,
    scale: float = 0.05,
    seed: int = 1,
    workers: Optional[int] = None,
    domains: Iterable[str] = DOMAIN_ORDER,
    options: ConsolidationOptions | None = None,
    datasets: dict | None = None,
    backend: Optional[str] = None,
    config: ExecutionConfig | None = None,
) -> Figure9Report:
    """Regenerate every Figure 9 bar pair; raises on any soundness failure."""

    cfg = resolve_config(config, workers=workers, backend=backend)
    datasets = datasets or make_datasets(scale)
    report = Figure9Report()
    for domain in domains:
        ds = datasets[domain]
        module = DOMAIN_QUERIES[domain]
        for family in module.FAMILY_NAMES:
            programs = module.make_batch(ds, family, n=n_udfs, seed=seed)
            result = run_experiment(
                ds, programs, family=family, options=options, config=cfg
            )
            report.results.append(result)
    return report
