"""Plain-text rendering of experiment results (tables and ASCII bars)."""

from __future__ import annotations

from typing import Sequence

from .figure10 import Figure10Report
from .figure9 import Figure9Report
from .harness import ExperimentResult

__all__ = ["format_table", "render_figure9", "render_figure10"]


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table."""

    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    widths = {c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    rule = "  ".join("-" * widths[c] for c in columns)
    lines = [header, rule]
    for r in rows:
        lines.append("  ".join(str(r.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _bar(value: float, scale: float = 2.0, cap: int = 50) -> str:
    return "#" * min(cap, max(1, round(value * scale)))


def render_figure9(report: Figure9Report) -> str:
    """A textual Figure 9: one UDF/Total bar pair per experiment."""

    lines = ["Figure 9 — speedup of whereConsolidated over whereMany", ""]
    current_domain = None
    for r in report.results:
        if r.domain != current_domain:
            current_domain = r.domain
            lines.append(f"[{r.domain}]")
        lines.append(
            f"  {r.family:<4} UDF   {r.udf_speedup:6.2f}x  {_bar(r.udf_speedup)}"
        )
        lines.append(
            f"       Total {r.total_speedup:6.2f}x  {_bar(r.total_speedup)}"
        )
    agg = report.aggregates()
    lines += [
        "",
        (
            f"UDF speedup   : {agg['udf_min']:.1f}x .. {agg['udf_max']:.1f}x "
            f"(avg {agg['udf_avg']:.1f}x)   [paper: 2.6x .. 24.2x, avg 8.4x]"
        ),
        (
            f"Total speedup : {agg['total_min']:.1f}x .. {agg['total_max']:.1f}x "
            f"(avg {agg['total_avg']:.1f}x)   [paper: 1.4x .. 23.1x, avg 6.0x]"
        ),
        (
            f"Consolidation : avg {agg['consolidation_avg_s']:.2f}s per batch, "
            f"{agg['consolidation_frac_avg'] * 100:.1f}% of total "
            f"[paper: ~0.3s, ~0.4%]"
        ),
    ]
    return "\n".join(lines)


def render_figure10(report: Figure10Report) -> str:
    """A textual Figure 10: the five series against the number of UDFs."""

    rows = [
        {
            "n_udfs": p.n_udfs,
            "whereMany_udf": p.many_udf_cost,
            "whereMany_total": p.many_total_cost,
            "whereCons_udf": p.cons_udf_cost,
            "whereCons_total": p.cons_total_cost,
            "consolidation_s": round(p.consolidation_seconds, 3),
        }
        for p in report.points
    ]
    growth = report.growth_ratios()
    footer = (
        f"\nn grew {growth['n_ratio']:.0f}x: whereMany total grew "
        f"{growth['many_total_growth']:.1f}x (paper: ~linear), "
        f"whereConsolidated total grew {growth['cons_total_growth']:.1f}x "
        f"(paper: roughly constant)"
    )
    return (
        "Figure 10 — scalability with the number of UDFs (News mixes)\n\n"
        + format_table(rows)
        + footer
    )
