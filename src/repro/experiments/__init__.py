"""Experiment harnesses regenerating the paper's tables and figures."""

from .figure10 import DEFAULT_SWEEP, Figure10Report, ScalabilityPoint, run_figure10
from .figure9 import DOMAIN_ORDER, Figure9Report, make_datasets, run_figure9
from .harness import ExperimentResult, SoundnessError, run_experiment
from .latency import LatencyReport, run_latency_experiment
from .report import format_table, render_figure10, render_figure9
