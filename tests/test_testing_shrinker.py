"""The delta-debugging minimiser: shrinks hard, never changes the failure."""

import pytest

from repro.lang.ast import (
    Assign, BinOp, BoolConst, Call, Cmp, If, IntConst, Notify, Program, Var, seq,
)
from repro.lang.visitors import notified_pids, stmt_size
from repro.testing import (
    case_inputs,
    generate_case,
    miscompile,
    run_battery,
    schema_dataset,
    shrink_batch,
)
from repro.testing.shrinker import batch_size

WEATHER = schema_dataset("weather")
INPUTS = case_inputs("weather")


def test_non_failing_batch_returned_unchanged():
    programs = generate_case(0, "weather", 2)
    out = shrink_batch(programs, lambda c: False)
    assert out == list(programs)


def test_shrinks_to_the_failing_program():
    """Only q1's body matters to this predicate; everything else must go."""

    programs = generate_case(4, "weather", 3, n_programs=3)

    def is_failing(candidate):
        return any(p.pid == "q1" for p in candidate)

    out = shrink_batch(programs, is_failing)
    assert [p.pid for p in out] == ["q1"]
    assert batch_size(out) <= stmt_size(programs[1].body)


def test_interface_is_preserved():
    """A shrink may not drop a surviving program's notify statements."""

    programs = generate_case(4, "weather", 3, n_programs=2)
    seen = []

    def is_failing(candidate):
        seen.append(candidate)
        return True

    out = shrink_batch(programs, is_failing, max_checks=100)
    for candidate in seen:
        for p in candidate:
            assert notified_pids(p.body) == {p.pid}
    for p in out:
        assert notified_pids(p.body) == {p.pid}


def test_max_checks_bounds_predicate_calls():
    programs = generate_case(4, "weather", 3, n_programs=3)
    calls = [0]

    def is_failing(candidate):
        calls[0] += 1
        return True

    shrink_batch(programs, is_failing, max_checks=10)
    assert calls[0] <= 11  # the initial confirmation + max_checks


def test_miscompile_shrinks_to_minimal_program():
    """Acceptance: a deliberately injected miscompile is caught and the
    delta-debugger reduces the failing batch to ≤ 10 AST nodes."""

    programs = generate_case(1, "weather", 3)
    with miscompile():
        result = run_battery(
            programs, WEATHER, inputs=INPUTS,
            executors=("serial",), check_validator=False,
        )
        assert not result.ok, "the battery must catch the miscompile"
        oracles = {d.oracle for d in result.discrepancies}

        def still_fails(candidate):
            if not candidate:
                return False
            rerun = run_battery(
                candidate, WEATHER, inputs=INPUTS,
                executors=("serial",), check_validator=False,
            )
            return any(d.oracle in oracles for d in rerun.discrepancies)

        minimized = shrink_batch(programs, still_fails, max_checks=300)
    assert batch_size(minimized) <= 10, minimized
    # The known floor: a single program whose one notification gets flipped.
    assert len(minimized) == 1
    assert notified_pids(minimized[0].body) == {minimized[0].pid}


def test_structural_reductions_reach_expressions():
    """An irrelevant arithmetic subtree inside the predicate shrinks away."""

    big = Program("q0", ("row",), seq(
        Assign("x", BinOp("+", BinOp("*", IntConst(3), IntConst(4)),
                          Call("yearly_rainfall", (Var("row"),)))),
        If(Cmp("<", Var("x"), IntConst(10_000)),
           Notify("q0", BoolConst(True)),
           Notify("q0", BoolConst(False))),
    ))

    def is_failing(candidate):
        return bool(candidate) and candidate[0].pid == "q0"

    out = shrink_batch([big], is_failing)
    assert stmt_size(out[0].body) < stmt_size(big.body)
    assert notified_pids(out[0].body) == {"q0"}
