"""Tests for static costs and the related heuristic."""

import pytest

from repro.analysis import expr_cost, related, stmt_cost_bounds
from repro.analysis.related import call_features, comparison_subjects, is_trivial
from repro.lang import (
    CostModel,
    FunctionTable,
    Interpreter,
    LibraryFunction,
    add,
    and_,
    arg,
    assign,
    block,
    call,
    eq,
    gt,
    if_,
    lt,
    ne,
    not_,
    notify,
    or_,
    var,
    while_,
)

from hypothesis import given, settings, strategies as st


@pytest.fixture
def ft():
    return FunctionTable(
        [
            LibraryFunction("cheap", lambda x: x, cost=5),
            LibraryFunction("pricey", lambda x: x, cost=100),
        ]
    )


class TestExprCost:
    def test_constant_free(self, ft):
        assert expr_cost(add(1, 2), ft) == 1  # one arith op, consts free

    def test_call_cost_from_table(self, ft):
        assert expr_cost(call("pricey", arg("r")), ft) == 101

    def test_unknown_call_default(self, ft):
        assert expr_cost(call("mystery", arg("r")), ft) == 11

    def test_nested(self, ft):
        e = lt(call("cheap", arg("r")), add(var("x"), 3))
        # call(5)+arg(1) + var(1)+arith(1) + cmp(1)
        assert expr_cost(e, ft) == 9

    def test_matches_interpreter(self, ft):
        """Static expression cost equals dynamic cost (env-independent)."""

        interp = Interpreter(ft)
        for e in [
            add(var("x"), 2),
            lt(call("cheap", var("x")), call("pricey", var("x"))),
            or_(gt(var("x"), 0), ne(var("x"), 5)),
            not_(eq(var("x"), var("x"))),
        ]:
            _v, dynamic = interp.eval_expr(e, {"x": 7})
            assert expr_cost(e, ft) == dynamic


class TestStmtCostBounds:
    def test_straight_line_exact(self, ft):
        s = block(assign("x", add(1, 2)), notify("q", lt(var("x"), 5)))
        lo, hi = stmt_cost_bounds(s, ft)
        assert lo == hi == (1 + 1) + (1 + 0 + 1 + 1)

    def test_branch_spread(self, ft):
        s = if_(lt(arg("r"), 5), assign("x", call("pricey", arg("r"))), assign("x", 0))
        lo, hi = stmt_cost_bounds(s, ft)
        assert lo < hi
        test_cost = 1 + 0 + 1 + 2
        assert lo == test_cost + 0 + 1
        assert hi == test_cost + 101 + 1

    def test_loop_unbounded(self, ft):
        s = while_(lt(var("i"), 10), assign("i", add(var("i"), 1)))
        lo, hi = stmt_cost_bounds(s, ft)
        assert hi is None
        assert lo == 1 + 0 + 1 + 2  # one failed test


class TestRelated:
    def test_same_ground_call_related(self):
        a = lt(call("price", arg("r"), 0, 1), 100)
        b = notify("q", lt(call("price", arg("r"), 0, 1), 300))
        assert related(a, b)

    def test_same_function_different_ground_args_unrelated(self):
        a = lt(call("price", arg("r"), 0, 1), 100)
        b = notify("q", lt(call("price", arg("r"), 2, 3), 300))
        assert not related(a, b)

    def test_variable_args_fall_back_to_name(self):
        a = lt(call("temp", arg("r"), var("m")), 10)
        b = notify("q", lt(call("temp", arg("r"), var("k")), 20))
        assert related(a, b)

    def test_shared_comparison_subject(self):
        a = lt(add(var("x"), var("y")), 5)
        b = notify("q", gt(add(var("x"), var("y")), 2))
        assert related(a, b)

    def test_disjoint_fragments_unrelated(self):
        a = lt(call("f", arg("r")), 5)
        b = notify("q", gt(call("g", arg("r")), 2))
        assert not related(a, b)

    def test_shared_argument_alone_not_enough(self):
        # Every UDF reads the same row; that must not make them related.
        a = lt(call("f", arg("row")), 5)
        b = notify("q", eq(call("g", arg("row")), 0))
        assert not related(a, b)

    def test_trivial(self):
        assert is_trivial(arg("r"))
        assert is_trivial(var("x"))
        assert not is_trivial(call("f", arg("r")))
        assert not is_trivial(add(var("x"), 1))


@given(st.integers(0, 3))
@settings(max_examples=20)
def test_cost_monotone_in_call_price(k):
    ft = FunctionTable([LibraryFunction("f", lambda x: x, cost=10 * (k + 1))])
    e = call("f", arg("r"))
    assert expr_cost(e, ft) == 10 * (k + 1) + 1
