"""Unit tests for the abstract-interpretation framework and its checkers.

Covers the value lattices (`values`), the structured fixpoint engine
(`framework` + `domains`), the trip-count/cost bounder (`costbound`) and
the UDF linter (`lint`).  The translation validator has its own module
(``test_static_validate``).
"""

import pytest

from repro.analysis.static import (
    DefiniteAssignmentDomain,
    Interval,
    IntervalConstDomain,
    NotificationDomain,
    StaticEnv,
    analyze_program,
    constant_step,
    lint_program,
    program_cost_upper,
    trip_count_bound,
    widening_thresholds,
)
from repro.lang import (
    FunctionTable,
    LibraryFunction,
    add,
    arg,
    assign,
    block,
    call,
    if_,
    le,
    lift,
    lt,
    notify,
    program,
    sub,
    var,
    while_,
)
from repro.lang.ast import Arg, Cmp, Var, While
from repro.lang.cost import DEFAULT_COST_MODEL
from repro.lang.interp import Interpreter

FT = FunctionTable([LibraryFunction("f", lambda x: x + 1, cost=40)])


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


def test_interval_lattice_basics():
    a = Interval(0, 5)
    b = Interval(3, 9)
    assert a.join(b) == Interval(0, 9)
    assert a.meet(b) == Interval(3, 5)
    assert Interval(0, 2).meet(Interval(5, 7)).is_empty
    assert Interval(2, 2).is_const
    assert a.leq(Interval(None, None))
    assert not Interval(None, None).leq(a)


def test_interval_arith_and_comparisons():
    assert Interval(1, 2).add(Interval(10, 20)) == Interval(11, 22)
    assert Interval(1, 2).sub(Interval(0, 1)) == Interval(0, 2)
    assert Interval(-2, 3).mul(Interval(4, 5)) == Interval(-10, 15)
    assert Interval(0, 4).always_lt(Interval(5, 9))
    assert Interval(0, 5).always_le(Interval(5, 9))
    assert not Interval(0, 5).always_lt(Interval(5, 9))
    assert Interval(0, 1).never_overlaps(Interval(2, 3))


def test_interval_widen_respects_thresholds():
    # An unstable upper bound jumps to the nearest enclosing threshold.
    w = Interval(0, 3).widen(Interval(0, 4), thresholds=(13,))
    assert w == Interval(0, 13)
    # ... and to +inf when no threshold encloses it.
    w2 = Interval(0, 3).widen(Interval(0, 4), thresholds=())
    assert w2 == Interval(0, None)


# ---------------------------------------------------------------------------
# StaticEnv transfer functions
# ---------------------------------------------------------------------------


def test_env_assign_and_eval():
    env = StaticEnv()
    env.assign("x", lift(4))
    env.assign("y", add(var("x"), lift(1)))
    assert env.eval_int(var("y")) == Interval(5, 5)
    assert env.eval_bool(lt(var("x"), var("y"))) is True
    assert env.eval_bool(lt(var("y"), var("x"))) is False
    assert env.eval_bool(lt(var("x"), arg("a"))) is None


def test_env_assume_refines_and_detects_dead_branches():
    env = StaticEnv()
    env.assume(le(arg("a"), lift(10)))
    assert env.eval_int(Arg("a")) == Interval(None, 10)
    env.assume(lt(lift(20), arg("a")))  # contradicts a <= 10
    assert env.unreachable


def test_env_havoc_forgets():
    env = StaticEnv()
    env.assign("x", lift(1))
    env.havoc(("x",))
    assert env.eval_int(Var("x")) == Interval(None, None)


def test_env_join_keeps_common_facts_only():
    a = StaticEnv()
    a.assign("x", lift(1))
    a.assign("y", lift(7))
    b = StaticEnv()
    b.assign("x", lift(3))
    j = a.join(b)
    assert j.eval_int(Var("x")) == Interval(1, 3)
    assert j.eval_int(Var("y")) == Interval(None, None)


# ---------------------------------------------------------------------------
# Framework + domains
# ---------------------------------------------------------------------------


def test_interval_domain_bounds_a_counting_loop():
    p = program(
        "q",
        ("a",),
        block(
            assign("i", lift(0)),
            while_(le(var("i"), lift(12)), assign("i", add(var("i"), lift(1)))),
        ),
        notify("q", lt(var("i"), lift(99))),
    )
    out = analyze_program(IntervalConstDomain.for_program(p), p)
    # On exit the guard is false: i in [13, 13] thanks to threshold widening.
    assert out.eval_int(Var("i")) == Interval(13, 13)


def test_definite_assignment_joins_by_intersection():
    p = program(
        "q",
        ("a",),
        if_(lt(arg("a"), lift(0)), assign("x", lift(1)), assign("y", lift(2))),
        notify("q", lt(lift(0), lift(1))),
    )
    out = analyze_program(DefiniteAssignmentDomain(), p)
    assert set(out.assigned) == set()  # neither x nor y assigned on *every* path


def test_notification_domain_counts_and_saturates():
    d = NotificationDomain()
    p = program(
        "q",
        ("a",),
        block(
            assign("i", lift(0)),
            while_(
                lt(var("i"), lift(3)),
                block(notify("w", lt(var("i"), lift(9))), assign("i", add(var("i"), lift(1)))),
            ),
        ),
        notify("q", lt(lift(0), lift(1))),
    )
    out = analyze_program(d, p)
    assert d.exactly_once(out, "q") is True
    assert d.exactly_once(out, "w") is None  # 0..2+ times: undecided
    assert d.exactly_once(out, "absent") is False


# ---------------------------------------------------------------------------
# Cost bounds
# ---------------------------------------------------------------------------


def test_constant_step_detection():
    body = block(assign("x", lift(0)), assign("i", add(var("i"), lift(2))))
    assert constant_step(body, "i") == 2
    assert constant_step(body, "x") is None  # reset, not stepped
    two_paths = if_(
        lt(var("i"), lift(5)),
        assign("i", add(var("i"), lift(1))),
        assign("i", sub(var("i"), lift(1))),
    )
    assert constant_step(two_paths, "i") is None  # +1 and -1 disagree


def test_trip_count_bound_forward_and_none_for_unbounded():
    env = StaticEnv()
    env.assign("i", lift(0))
    loop = While(le(Var("i"), lift(11)), assign("i", add(var("i"), lift(1))))
    assert trip_count_bound(loop, env) == 12
    unbounded = While(le(Var("i"), arg("a")), assign("i", add(var("i"), lift(1))))
    assert trip_count_bound(unbounded, env) is None


def test_program_cost_upper_is_sound_and_loop_aware():
    p = program(
        "q",
        ("a",),
        block(
            assign("i", lift(0)),
            assign("s", lift(0)),
            while_(
                lt(var("i"), lift(5)),
                block(
                    assign("s", add(var("s"), call("f", var("i")))),
                    assign("i", add(var("i"), lift(1))),
                ),
            ),
        ),
        notify("q", lt(var("s"), lift(100))),
    )
    ub = program_cost_upper(p, FT)
    assert ub is not None
    actual = Interpreter(FT).run(p, {"a": 0}).cost
    assert actual <= ub


def test_program_cost_upper_unknown_for_argument_bounded_loop():
    p = program(
        "q",
        ("a",),
        block(
            assign("i", lift(0)),
            while_(lt(var("i"), arg("a")), assign("i", add(var("i"), lift(1)))),
        ),
        notify("q", lt(var("i"), lift(5))),
    )
    assert program_cost_upper(p, FT) is None


# ---------------------------------------------------------------------------
# Linter
# ---------------------------------------------------------------------------


def _rules(report):
    return {f.rule for f in report.findings}


def test_lint_clean_program_has_no_findings():
    p = program(
        "q",
        ("a",),
        assign("x", call("f", arg("a"))),
        notify("q", lt(var("x"), lift(3))),
    )
    report = lint_program(p, FT)
    assert not report.findings, report.findings


def test_lint_use_before_def():
    p = program("q", ("a",), notify("q", lt(var("never_set"), lift(0))))
    report = lint_program(p, FT)
    assert "use-before-def" in _rules(report)
    assert report.has_errors


def test_lint_dead_store():
    p = program(
        "q",
        ("a",),
        block(assign("x", lift(1)), assign("x", lift(2))),
        notify("q", lt(var("x"), lift(9))),
    )
    assert "dead-store" in _rules(lint_program(p, FT))


def test_lint_unreachable_branch():
    p = program(
        "q",
        ("a",),
        block(
            assign("x", lift(1)),
            if_(lt(var("x"), lift(0)), assign("y", lift(1)), assign("y", lift(2))),
        ),
        notify("q", lt(var("y"), lift(9))),
    )
    assert "unreachable-branch" in _rules(lint_program(p, FT))


def test_lint_duplicate_and_missing_notify():
    dup = program(
        "q",
        ("a",),
        block(notify("q", lt(lift(0), lift(1))), notify("q", lt(lift(0), lift(1)))),
    )
    report = lint_program(dup, FT)
    assert "duplicate-notify" in _rules(report)
    assert report.has_errors

    silent = program("q", ("a",), assign("x", lift(1)))
    assert "missing-notify" in _rules(lint_program(silent, FT))


def test_lint_non_bool_guard_and_unknown_function():
    p = program(
        "q",
        ("a",),
        if_(Cmp("<", var("x"), lift(0)), assign("x", lift(1)), assign("x", lift(2))),
        notify("q", lt(call("nope", arg("a")), lift(1))),
    )
    # Replace the If guard with an int expression via direct construction.
    from repro.lang.ast import If, Notify, Program, Seq

    bad_guard = Program(
        "q",
        ("a",),
        Seq(
            (
                If(add(arg("a"), lift(1)), assign("x", lift(1)), assign("x", lift(2))),
                Notify("q", lt(call("nope", arg("a")), lift(1))),
            )
        ),
    )
    rules = _rules(lint_program(bad_guard, FT))
    assert "non-bool-guard" in rules
    assert "unknown-function" in rules


def test_lint_five_domain_families_are_clean():
    """The generated evaluation queries must lint clean (no false alarms)."""

    from repro.experiments.figure9 import make_datasets
    from repro.queries import DOMAIN_QUERIES

    datasets = make_datasets(scale=0.01)
    for domain, module in DOMAIN_QUERIES.items():
        ds = datasets[domain]
        for family in module.FAMILY_NAMES:
            for p in module.make_batch(ds, family, n=3, seed=1):
                report = lint_program(p, ds.functions)
                assert not report.findings, (domain, family, report.findings)


class TestWideningConvergence:
    """Regression: threshold widening ascends one threshold per fixpoint
    iteration, so a constant-rich program (more thresholds than the
    iteration budget) used to make ``_loop_invariant`` raise "abstract
    fixpoint did not converge".  Found by differential fuzzing on merged
    batches (``repro fuzz``, seeds 10/12); fixed by the ``widen_top``
    cutoff that drops the thresholds after ``WIDEN_TOP_AFTER`` steps.
    """

    def constant_rich_loop(self, n_consts=40):
        stmts = [assign(f"c{i}", lift(7 + 3 * i)) for i in range(n_consts)]
        stmts.append(assign("v", lift(0)))
        stmts.append(while_(lt(var("v"), lift(1000)), assign("v", add(var("v"), lift(1)))))
        stmts.append(notify("q0", lt(var("v"), lift(2000))))
        return program("q0", ("row",), *stmts)

    def test_constant_rich_program_converges(self):
        p = self.constant_rich_loop()
        assert len(widening_thresholds(p)) > 64, "the trigger needs many thresholds"
        state = analyze_program(IntervalConstDomain.for_program(p), p)
        iv = state.ints.get(var("v"))
        # Sound after the loop: the exit refinement keeps the lower bound.
        assert iv is not None and iv.lo is not None and iv.lo >= 1000

    def test_divergence_without_the_cutoff(self):
        """Documents the bug: with widen_top disabled the fixpoint dies."""

        from repro.analysis.static import framework

        p = self.constant_rich_loop()
        domain = IntervalConstDomain.for_program(p)
        original = framework.WIDEN_TOP_AFTER
        framework.WIDEN_TOP_AFTER = framework.MAX_ITER  # never reached
        try:
            with pytest.raises(RuntimeError, match="did not converge"):
                analyze_program(domain, p)
        finally:
            framework.WIDEN_TOP_AFTER = original

    def test_bounded_loops_keep_their_precision(self):
        """The cutoff must not cost the month-loop its tight bound."""

        p = program(
            "q0",
            ("row",),
            assign("m", lift(1)),
            while_(le(var("m"), lift(12)), assign("m", add(var("m"), lift(1)))),
            notify("q0", lt(var("m"), lift(100))),
        )
        state = analyze_program(IntervalConstDomain.for_program(p), p)
        iv = state.ints.get(var("m"))
        assert iv is not None and iv.lo == 13 and iv.hi == 13
