"""The vectorizability ladder is stable across every evaluation domain.

These tags are part of the public surface (``repro prefilter`` prints
them, DESIGN.md §10 documents them), so each generated query family is
pinned to the shape the classifier must assign it.  A change here is an
intentional API change, not noise: update DESIGN.md alongside.

* weather Q1/Q2 are guarded aggregate comparisons — ``branch-free``;
* weather Q3/Q4 scan the twelve months with a constant-trip loop —
  ``bounded-loop``;
* every other domain's families compile to nested conditionals over
  accessor calls — ``branch-free``.
"""

import pytest

from repro import datasets as ds
from repro.analysis.prefilter import classify_shape, synthesize_prefilter
from repro.queries import DOMAIN_QUERIES

# domain -> family -> expected shape tag for every program in the batch
EXPECTED = {
    "weather": {
        "Q1": "branch-free",
        "Q2": "branch-free",
        "Q3": "bounded-loop",
        "Q4": "bounded-loop",
        "Mix": "branch-free",
    },
    "flight": {f: "branch-free" for f in ("Q1", "Q2", "Q3", "Mix")},
    "news": {f: "branch-free" for f in ("Q1", "Q2", "Q3", "BC")},
    "twitter": {f: "branch-free" for f in ("Q1", "Q2", "Q3", "BC")},
    "stock": {f: "branch-free" for f in ("Q1", "Q2", "Q3", "BC")},
}

_MAKERS = {
    "weather": lambda: ds.generate_weather(cities=15),
    "flight": lambda: ds.generate_flights(airlines=15),
    "news": lambda: ds.generate_news(articles=40),
    "twitter": lambda: ds.generate_twitter(tweets=40),
    "stock": lambda: ds.generate_stocks(companies=8, total_daily_rows=300),
}


@pytest.fixture(scope="module")
def domain_datasets():
    return {name: make() for name, make in _MAKERS.items()}


def test_expected_table_covers_every_family():
    for domain, module in DOMAIN_QUERIES.items():
        assert set(EXPECTED[domain]) == set(module.FAMILY_NAMES), domain


@pytest.mark.parametrize("domain", sorted(EXPECTED))
def test_shape_tags_are_stable(domain, domain_datasets):
    dataset = domain_datasets[domain]
    module = DOMAIN_QUERIES[domain]
    for family, expected in EXPECTED[domain].items():
        batch = module.make_batch(dataset, family, n=3, seed=1)
        for program in batch:
            got = classify_shape(program, dataset.functions)
            assert got == expected, f"{domain}/{family}/{program.pid}: {got}"


@pytest.mark.parametrize("domain", sorted(EXPECTED))
def test_branch_free_families_synthesize_certified_guards(domain, domain_datasets):
    """Branch-free queries must come with a *proved* non-trivial guard."""

    dataset = domain_datasets[domain]
    module = DOMAIN_QUERIES[domain]
    for family, expected in EXPECTED[domain].items():
        if expected != "branch-free":
            continue
        batch = module.make_batch(dataset, family, n=2, seed=1)
        for program in batch:
            pre = synthesize_prefilter(program, dataset.functions)
            assert pre.certificate == "proved", (
                f"{domain}/{family}/{program.pid}: {pre.certificate} "
                f"({pre.degraded_reason})"
            )
            assert not pre.trivial
