"""Coverage for the function table, static typing, and assorted lang utilities."""

import pytest

from repro.lang import (
    BOOL,
    FunctionTable,
    INT,
    LibraryFunction,
    STR,
    add,
    and_,
    arg,
    assign,
    block,
    call,
    check_program,
    eq,
    if_,
    ite_notify,
    lt,
    notify,
    program,
    type_of,
    var,
    while_,
)
from repro.lang.visitors import TypeError_, expr_size, notified_pids, rename_locals, stmt_size


class TestFunctionTable:
    def test_register_and_lookup(self):
        ft = FunctionTable([LibraryFunction("f", lambda x: x, cost=5)])
        assert "f" in ft
        assert ft["f"].cost == 5
        assert len(ft) == 1

    def test_duplicate_rejected(self):
        ft = FunctionTable([LibraryFunction("f", lambda x: x)])
        with pytest.raises(ValueError):
            ft.register(LibraryFunction("f", lambda x: x + 1))

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            FunctionTable()["ghost"]

    def test_merged_union(self):
        a = FunctionTable([LibraryFunction("f", lambda x: x)])
        b = FunctionTable([LibraryFunction("g", lambda x: x)])
        merged = a.merged(b)
        assert merged.names() == ["f", "g"]

    def test_merged_conflict_rejected(self):
        a = FunctionTable([LibraryFunction("f", lambda x: x, cost=1)])
        b = FunctionTable([LibraryFunction("f", lambda x: x, cost=2)])
        with pytest.raises(ValueError):
            a.merged(b)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            LibraryFunction("f", lambda x: x, cost=-1)

    def test_bad_sort_rejected(self):
        with pytest.raises(ValueError):
            LibraryFunction("f", lambda x: x, result_sort="float")


FT = FunctionTable(
    [
        LibraryFunction("price", lambda r: r, cost=10),
        LibraryFunction("name", lambda r: "x", cost=10, result_sort=STR),
        LibraryFunction("is_hub", lambda r: True, cost=10, result_sort=BOOL),
        LibraryFunction("dist", lambda a, b: 1, cost=10, arg_sorts=(INT, INT)),
    ]
)


class TestTyping:
    def test_call_result_sorts(self):
        assert type_of(call("price", arg("r")), FT) == INT
        assert type_of(call("name", arg("r")), FT) == STR
        assert type_of(call("is_hub", arg("r")), FT) == BOOL

    def test_arity_checked(self):
        with pytest.raises(TypeError_):
            type_of(call("dist", arg("r")), FT)

    def test_arg_sorts_checked(self):
        with pytest.raises(TypeError_):
            type_of(call("dist", arg("r"), call("name", arg("r"))), FT)

    def test_string_ordering_rejected(self):
        with pytest.raises(TypeError_):
            type_of(lt(call("name", arg("r")), "abc"), FT)

    def test_string_equality_allowed(self):
        assert type_of(eq(call("name", arg("r")), "abc"), FT) == BOOL

    def test_bool_equality_rejected(self):
        with pytest.raises(TypeError_):
            type_of(eq(call("is_hub", arg("r")), True), FT)

    def test_arith_on_bool_rejected(self):
        with pytest.raises(TypeError_):
            type_of(add(call("is_hub", arg("r")), 1), FT)

    def test_check_program_accepts_valid(self):
        p = program(
            "q",
            ("r",),
            assign("p", call("price", arg("r"))),
            ite_notify("q", lt(var("p"), 100)),
        )
        check_program(p, FT)  # must not raise

    def test_check_program_rejects_int_notify(self):
        p = program("q", ("r",), notify("q", add(1, 2)))
        with pytest.raises(TypeError_):
            check_program(p, FT)

    def test_check_program_rejects_int_guard(self):
        p = program("q", ("r",), if_(add(1, 2), notify("q", True), notify("q", False)))
        with pytest.raises(TypeError_):
            check_program(p, FT)

    def test_var_sort_follows_assignment(self):
        p = program(
            "q",
            ("r",),
            assign("s", call("name", arg("r"))),
            ite_notify("q", eq(var("s"), "hub")),
        )
        check_program(p, FT)


class TestUtilities:
    def test_sizes(self):
        e = and_(lt(arg("a"), 3), eq(var("x"), 1))
        assert expr_size(e) == 7
        s = block(assign("x", add(1, 2)), notify("q", True))
        assert stmt_size(s) > expr_size(e) - 3

    def test_rename_locals_prefixes_everything(self):
        p = program(
            "q7",
            ("r",),
            assign("x", call("price", arg("r"))),
            while_(lt(var("x"), 10), assign("x", add(var("x"), 1))),
            ite_notify("q7", lt(var("x"), 99)),
        )
        renamed = rename_locals(p)
        from repro.lang.visitors import stmt_vars

        assert all(n.startswith("q7.") for n in stmt_vars(renamed.body))

    def test_rename_locals_idempotent(self):
        p = program("q", ("r",), assign("x", 1), notify("q", True))
        once = rename_locals(p)
        twice = rename_locals(once)
        assert once == twice

    def test_notified_pids_through_control_flow(self):
        p = program(
            "a",
            ("r",),
            if_(
                lt(arg("r"), 0),
                notify("a", True),
                block(notify("a", False), notify("b", True)),
            ),
        )
        assert notified_pids(p.body) == {"a", "b"}
