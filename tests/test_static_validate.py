"""The consolidation translation validator, end to end.

Three layers:

* unit — :func:`validate_consolidation` proves correct merges, leaves
  unprovable ones ``unknown`` and refutes definite notify violations;
* integration — ``consolidate_all(static_validate=True)`` certifies every
  pair the real engine produces on the paper domains (the "no false
  alarms" acceptance criterion), and the entailment pre-check skips SMT
  queries on a Figure-9-style run;
* CLI — ``repro lint`` exit codes and JSON output.
"""

import json

import pytest

from repro.analysis.static import validate_consolidation
from repro.analysis.static.validate import PROVED, REFUTED, UNKNOWN
from repro.cli import main
from repro.consolidation import ConsolidationOptions, Consolidator, consolidate_all
from repro.lang import (
    FunctionTable,
    LibraryFunction,
    Program,
    add,
    arg,
    assign,
    block,
    call,
    if_,
    ite_notify,
    lt,
    notify,
    program,
    var,
)
from repro.lang.visitors import rename_locals

FT = FunctionTable([LibraryFunction("val", lambda r: (r * 13) % 50, cost=15)])


def filt(pid, bound):
    return program(
        pid,
        ("row",),
        assign("x", call("val", arg("row"))),
        ite_notify(pid, lt(var("x"), bound)),
    )


class TestUnit:
    def test_certifies_a_correct_hand_merge(self):
        p1, p2 = filt("a", 10), filt("b", 30)
        q1, q2 = rename_locals(p1), rename_locals(p2)
        merged = Program("m", ("row",), block(q1.body, q2.body))
        v = validate_consolidation([p1, p2], merged, FT)
        assert v.notify_verdict == PROVED
        assert v.cost_verdict == PROVED
        assert v.certified
        assert v.merged_cost_upper <= v.originals_cost_upper

    def test_certifies_the_real_consolidator(self):
        p1, p2 = filt("a", 10), filt("b", 30)
        merged = Consolidator(FT).consolidate(p1, p2)
        v = validate_consolidation([p1, p2], merged, FT)
        assert v.certified, v.to_dict()

    def test_refutes_a_dropped_notification(self):
        p1, p2 = filt("a", 10), filt("b", 30)
        only_a = rename_locals(p1)
        v = validate_consolidation([p1, p2], Program("m", ("row",), only_a.body), FT)
        assert v.notify_verdict == REFUTED
        assert v.refuted
        assert not v.certified

    def test_refutes_a_duplicated_notification(self):
        p1 = filt("a", 10)
        q1 = rename_locals(p1)
        doubled = Program("m", ("row",), block(q1.body, q1.body))
        v = validate_consolidation([p1], doubled, FT)
        assert v.notify_verdict == REFUTED

    def test_refutes_a_foreign_pid(self):
        p1 = filt("a", 10)
        stray = Program(
            "m",
            ("row",),
            block(rename_locals(p1).body, notify("intruder", lt(arg("row"), arg("row")))),
        )
        v = validate_consolidation([p1], stray, FT)
        assert v.notify_verdict == REFUTED

    def test_conditional_notify_is_unknown_not_refuted(self):
        p1 = filt("a", 10)
        q1 = rename_locals(p1)
        from repro.lang import lift

        maybe = Program(
            "m",
            ("row",),
            if_(lt(arg("row"), lift(5)), q1.body, block()),
        )
        v = validate_consolidation([p1], maybe, FT)
        assert v.notify_verdict == UNKNOWN
        assert not v.refuted

    def test_costlier_merge_is_unknown_never_refuted(self):
        p1 = filt("a", 10)
        q1 = rename_locals(p1)
        padded = Program(
            "m",
            ("row",),
            block(assign("w", call("val", arg("row"))), q1.body),
        )
        v = validate_consolidation([p1], padded, FT)
        assert v.notify_verdict == PROVED
        assert v.cost_verdict == UNKNOWN  # upper bounds cannot *disprove*
        assert not v.refuted

    def test_loop_program_certifies_via_trip_count(self):
        from repro.lang import le, lift, while_

        def summing(pid, bound):
            return program(
                pid,
                ("row",),
                block(
                    assign("i", lift(1)),
                    assign("s", lift(0)),
                    while_(
                        le(var("i"), lift(bound)),
                        block(
                            assign("s", add(var("s"), call("val", var("i")))),
                            assign("i", add(var("i"), lift(1))),
                        ),
                    ),
                ),
                ite_notify(pid, lt(var("s"), 100)),
            )

        p1, p2 = summing("a", 12), summing("b", 12)
        merged = Consolidator(FT).consolidate(p1, p2)
        v = validate_consolidation([p1, p2], merged, FT)
        assert v.certified, v.to_dict()


class TestIntegration:
    @pytest.fixture(scope="class")
    def datasets(self):
        from repro.experiments.figure9 import make_datasets

        return make_datasets(scale=0.01)

    def test_all_domain_consolidations_certify(self, datasets):
        """Acceptance: no false alarms on any of the five paper domains."""

        from repro.queries import DOMAIN_QUERIES

        options = ConsolidationOptions(static_validate=True)
        for domain, module in DOMAIN_QUERIES.items():
            ds = datasets[domain]
            for family in module.FAMILY_NAMES:
                batch = module.make_batch(ds, family, n=4, seed=1)
                report = consolidate_all(batch, ds.functions, options=options)
                assert report.validations, (domain, family)
                assert report.all_certified, (
                    domain,
                    family,
                    [v.to_dict() for v in report.validations if not v.certified],
                )

    def test_precheck_skips_smt_queries(self, datasets):
        """Acceptance: the entailment pre-check demonstrably skips solver calls."""

        from repro.queries import DOMAIN_QUERIES

        ds = datasets["weather"]
        module = DOMAIN_QUERIES["weather"]
        batch = module.make_batch(ds, "Mix", n=8, seed=1)
        report = consolidate_all(batch, ds.functions)
        stats = report.simplify_stats
        assert stats["precheck_skips"] > 0, stats
        assert stats["entail_queries"] >= stats["smt_queries"] + stats["precheck_skips"]

    def test_memoization_reports_hits(self, datasets):
        from repro.queries import DOMAIN_QUERIES

        ds = datasets["weather"]
        module = DOMAIN_QUERIES["weather"]
        batch = module.make_batch(ds, "Q1", n=8, seed=1)
        report = consolidate_all(batch, ds.functions)
        stats = report.simplify_stats
        assert stats["memo_hits"] > 0, stats
        assert 0.0 <= stats["memo_hit_rate"] <= 1.0

    def test_validation_surfaces_in_experiment_result(self, datasets):
        from repro.experiments import run_experiment
        from repro.queries import DOMAIN_QUERIES

        ds = datasets["weather"]
        module = DOMAIN_QUERIES["weather"]
        batch = module.make_batch(ds, "Q1", n=4, seed=1)
        options = ConsolidationOptions(static_validate=True)
        result = run_experiment(ds, batch, family="Q1", options=options, row_limit=10)
        assert result.validations_total == 3
        assert result.validations_certified == 3
        row = result.row()
        assert row["validated"] == "3/3"
        assert row["smt_skips"] == result.smt_skips


class TestLintCLI:
    def test_clean_files_exit_zero(self, tmp_path, capsys):
        f = tmp_path / "p.prog"
        f.write_text(
            "program hot(row) {\n"
            "  t := monthly_avg_temp(@row, 7);\n"
            "  if (t > 50) { notify hot true; } else { notify hot false; }\n"
            "}\n"
        )
        rc = main(["lint", str(f), "--domain", "weather"])
        assert rc == 0
        assert "0 errors" in capsys.readouterr().err

    def test_error_findings_exit_nonzero(self, tmp_path, capsys):
        f = tmp_path / "bad.prog"
        f.write_text(
            "program q(row) {\n"
            "  if (u > 0) { notify q true; } else { notify q false; }\n"
            "}\n"
        )
        rc = main(["lint", str(f)])
        assert rc == 2
        out = capsys.readouterr().out
        assert "use-before-def" in out

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        f = tmp_path / "bad.prog"
        f.write_text(
            "program q(row) {\n"
            "  x := 1;\n"
            "  x := 2;\n"
            "  if (x > 0) { notify q true; } else { notify q false; }\n"
            "}\n"
        )
        rc = main(["lint", str(f), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["programs"] == 1
        assert doc["warnings"] >= 1
        assert rc == 1  # warnings only
        assert doc["reports"][0]["findings"][0]["rule"]

    def test_generated_family_with_validation(self, capsys):
        rc = main(
            ["lint", "--domain", "weather", "--family", "Q1", "--n", "4", "--validate"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "3/3 pair consolidations certified" in err

    def test_nothing_to_lint_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["lint"])
