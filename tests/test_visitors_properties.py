"""Property-based tests for ``lang/visitors`` renaming and substitution.

Consolidation's very first step is ``rename_locals`` — if renaming ever
captured a variable or missed an occurrence inside ``Notify`` payloads,
nested ``While`` bodies or ``Call`` arguments, every downstream theorem
would be vacuous.  These properties pin the contract:

* renaming with an injective map is invertible and touches exactly the
  mapped names;
* ``rename_locals`` is semantics-preserving (same notifications, same
  cost) and idempotent;
* ``substitute`` replaces outside-in, so mutually-referential mappings
  (a swap) do not cascade.
"""

from hypothesis import given, settings, strategies as st

from repro.lang import (
    FunctionTable,
    LibraryFunction,
    add,
    arg,
    assign,
    block,
    call,
    if_,
    lift,
    lt,
    notify,
    program,
    sub,
    var,
    while_,
)
from repro.lang.ast import BoolOp, Cmp, Not, Var
from repro.lang.interp import Interpreter
from repro.lang.visitors import (
    rename_locals,
    rename_vars,
    stmt_vars,
    substitute,
)

FT = FunctionTable(
    [
        LibraryFunction("f", lambda x: (x * 5 + 3) % 11 - 5, cost=7),
        LibraryFunction("h", lambda x, y: (x - y) % 9 - 4, cost=9),
    ]
)

NAMES = ("x", "y", "z")


@st.composite
def int_exprs(draw, depth=2):
    base = st.one_of(
        st.integers(-6, 6).map(lift),
        st.sampled_from([arg("a"), var("x"), var("y"), var("z")]),
    )
    if depth <= 0:
        return draw(base)
    kind = draw(st.integers(0, 4))
    if kind <= 1:
        return draw(base)
    if kind == 2:
        return add(draw(int_exprs(depth - 1)), draw(int_exprs(depth - 1)))
    if kind == 3:
        return call("f", draw(int_exprs(depth - 1)))
    return call("h", draw(int_exprs(depth - 1)), draw(int_exprs(depth - 1)))


@st.composite
def stmts(draw, depth=2, allow_notify=True):
    """Statements over locals x/y/z exercising every syntactic position.

    Every loop gets its own dedicated counter (``c<depth>_<index>``) that
    nothing else assigns, so generated programs always terminate: nested
    statement lists only ever write x/y/z and *their own* lower-depth
    counters.  ``allow_notify=False`` inside loop bodies keeps runs
    clash-free (a second iteration re-notifying the same pid raises).
    """

    pieces = [assign(n, lift(i)) for i, n in enumerate(NAMES)]
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.integers(0, 3 if depth > 0 else 1))
        if kind == 1 and not allow_notify:
            kind = 0
        if kind == 0:
            pieces.append(assign(draw(st.sampled_from(NAMES)), draw(int_exprs())))
        elif kind == 1:
            pieces.append(notify(f"p{len(pieces)}", lt(draw(int_exprs(1)), 3)))
        elif kind == 2:
            pieces.append(
                if_(
                    lt(draw(int_exprs(1)), 0),
                    draw(stmts(depth - 1, allow_notify)),
                    draw(stmts(depth - 1, allow_notify)),
                )
            )
        else:
            counter = f"c{depth}_{len(pieces)}"
            pieces.append(assign(counter, lift(0)))
            pieces.append(
                while_(
                    lt(var(counter), draw(st.integers(1, 3))),
                    block(
                        draw(stmts(depth - 1, allow_notify=False)),
                        assign(counter, add(var(counter), lift(1))),
                    ),
                )
            )
    return block(*pieces)


def _distinct_pids(s, seen=None):
    """Rebuild with globally unique notify pids so programs run cleanly."""

    from repro.lang.ast import If, Notify, Seq, While, seq

    seen = [] if seen is None else seen
    if isinstance(s, Notify):
        seen.append(s)
        return Notify(f"p{len(seen)}", s.expr)
    if isinstance(s, Seq):
        return seq(*(_distinct_pids(t, seen) for t in s.stmts))
    if isinstance(s, If):
        return If(s.cond, _distinct_pids(s.then, seen), _distinct_pids(s.orelse, seen))
    if isinstance(s, While):
        return While(s.cond, _distinct_pids(s.body, seen))
    return s


@given(stmts(), st.integers(-5, 5))
@settings(max_examples=60, deadline=None)
def test_rename_locals_preserves_semantics(body, a):
    body = _distinct_pids(body)
    p = program("q", ("a",), body)
    renamed = rename_locals(p)
    interp = Interpreter(FT)
    r1 = interp.run(p, {"a": a})
    r2 = interp.run(renamed, {"a": a})
    assert r1.notifications == r2.notifications
    assert r1.cost == r2.cost


@given(stmts())
@settings(max_examples=60, deadline=None)
def test_rename_vars_injective_roundtrip(body):
    renaming = {n: f"t.{n}" for n in NAMES}
    inverse = {v: k for k, v in renaming.items()}
    forward = rename_vars(body, renaming)
    assert not (stmt_vars(forward) & set(NAMES))
    assert rename_vars(forward, inverse) == body


@given(stmts())
@settings(max_examples=40, deadline=None)
def test_rename_locals_idempotent(body):
    body = _distinct_pids(body)
    p = program("q", ("a",), body)
    once = rename_locals(p)
    assert rename_locals(once) == once


def test_rename_covers_notify_nested_while_and_call_args():
    body = block(
        assign("x", lift(0)),
        while_(
            lt(var("x"), 3),
            block(
                while_(
                    lt(var("y"), var("x")),
                    assign("y", add(var("y"), lift(1))),
                ),
                assign("x", add(var("x"), lift(1))),
            ),
        ),
        notify("q", lt(call("h", var("x"), sub(var("y"), lift(1))), 5)),
    )
    renamed = rename_vars(body, {"x": "q.x", "y": "q.y"})
    assert stmt_vars(renamed) == {"q.x", "q.y"}
    # The notify payload's Call arguments were rewritten too.
    notify_stmt = renamed.stmts[-1]
    call_expr = notify_stmt.expr.left
    assert call_expr.args[0] == Var("q.x")
    assert call_expr.args[1].left == Var("q.y")


def test_substitute_is_outside_in():
    swap = {Var("x"): Var("y"), Var("y"): Var("x")}
    e = lt(add(var("x"), var("y")), var("x"))
    swapped = substitute(e, swap)
    assert swapped == lt(add(var("y"), var("x")), var("y"))
    # Swapping twice is the identity — replacements are never re-visited.
    assert substitute(swapped, swap) == e


def test_substitute_replaces_whole_subtrees_once():
    key = add(var("x"), lift(1))
    mapping = {key: var("x")}
    e = add(add(var("x"), lift(1)), lift(1))
    # Outer tree is not a key; the inner occurrence is replaced wholesale,
    # and the result (which again matches the key shape) is not re-visited.
    assert substitute(e, mapping) == add(var("x"), lift(1))


def test_substitute_reaches_all_boolean_connectives():
    e = BoolOp(
        "and",
        Not(Cmp("<", var("x"), lift(0))),
        BoolOp("or", Cmp("=", var("x"), lift(1)), Cmp("<=", var("x"), lift(9))),
    )
    expected = BoolOp(
        "and",
        Not(Cmp("<", var("w"), lift(0))),
        BoolOp("or", Cmp("=", var("w"), lift(1)), Cmp("<=", var("w"), lift(9))),
    )
    assert substitute(e, {Var("x"): Var("w")}) == expected
