"""Tests for the cost-annotated big-step interpreter (Figure 2)."""

import pytest

from repro.lang import (
    CostModel,
    FunctionTable,
    Interpreter,
    InterpError,
    LibraryFunction,
    NotificationClash,
    StepLimitExceeded,
    add,
    arg,
    assign,
    block,
    call,
    eq,
    ge,
    gt,
    if_,
    ite_notify,
    le,
    lt,
    mul,
    ne,
    not_,
    notify,
    or_,
    and_,
    program,
    run_program,
    run_sequentially,
    sub,
    var,
    while_,
)


@pytest.fixture
def ft():
    return FunctionTable(
        [
            LibraryFunction("double", lambda x: 2 * x, cost=10),
            LibraryFunction("strlen", lambda s: len(s), cost=5),
        ]
    )


@pytest.fixture
def interp(ft):
    return Interpreter(ft)


class TestExpressions:
    def test_constants(self, interp):
        assert interp.eval_expr(add(2, 3), {}) == (5, 1)

    def test_subtraction_and_multiplication(self, interp):
        v, _ = interp.eval_expr(sub(mul(4, 5), 3), {})
        assert v == 17

    def test_variable_lookup_cost(self, interp):
        v, c = interp.eval_expr(var("x"), {"x": 7})
        assert (v, c) == (7, 1)

    def test_unbound_variable_raises(self, interp):
        with pytest.raises(InterpError):
            interp.eval_expr(var("nope"), {})

    def test_argument_lookup(self, interp):
        v, _ = interp.eval_expr(arg("row"), {"row": 42})
        assert v == 42

    def test_call_cost_includes_args(self, interp):
        # double(x): arg cost 1 (var) + call cost 10
        v, c = interp.eval_expr(call("double", var("x")), {"x": 3})
        assert (v, c) == (6, 11)

    def test_string_functions(self, interp):
        v, _ = interp.eval_expr(call("strlen", "hello"), {})
        assert v == 5

    def test_unknown_function_raises(self, interp):
        with pytest.raises(KeyError):
            interp.eval_expr(call("mystery", 1), {})

    def test_comparisons(self, interp):
        assert interp.eval_expr(lt(1, 2), {})[0] is True
        assert interp.eval_expr(le(2, 2), {})[0] is True
        assert interp.eval_expr(eq(2, 3), {})[0] is False
        assert interp.eval_expr(gt(3, 2), {})[0] is True
        assert interp.eval_expr(ge(2, 3), {})[0] is False
        assert interp.eval_expr(ne(2, 3), {})[0] is True

    def test_string_equality(self, interp):
        v, _ = interp.eval_expr(eq("united", "united"), {})
        assert v is True
        v, _ = interp.eval_expr(eq("united", "southwest"), {})
        assert v is False

    def test_boolean_connectives_not_short_circuit(self, interp):
        # Figure 2 evaluates both operands; both variable reads are paid.
        v, c = interp.eval_expr(or_(var("a"), var("b")), {"a": True, "b": False})
        assert v is True
        assert c == 1 + 1 + 1  # two var reads + connective

    def test_not(self, interp):
        v, _ = interp.eval_expr(not_(lt(2, 1)), {})
        assert v is True

    def test_type_error_arith_on_bool(self, interp):
        with pytest.raises(InterpError):
            interp.eval_expr(add(lt(1, 2), 1), {})

    def test_type_error_ordering_on_string(self, interp):
        with pytest.raises(InterpError):
            interp.eval_expr(lt("a", "b"), {})


class TestStatements:
    def test_assign_updates_env(self, ft):
        p = program("p", ("n",), assign("x", add(arg("n"), 1)), notify("p", lt(var("x"), 10)))
        r = run_program(p, {"n": 5}, ft)
        assert r.env["x"] == 6
        assert r.notifications == {"p": True}

    def test_branch_true_false(self, ft):
        p = program("p", ("n",), ite_notify("p", lt(arg("n"), 10)))
        assert run_program(p, {"n": 5}, ft).notifications == {"p": True}
        assert run_program(p, {"n": 15}, ft).notifications == {"p": False}

    def test_while_loop_sum(self, ft):
        p = program(
            "p",
            ("n",),
            assign("i", 0),
            assign("acc", 0),
            while_(lt(var("i"), arg("n")), block(assign("acc", add(var("acc"), var("i"))), assign("i", add(var("i"), 1)))),
            notify("p", gt(var("acc"), 10)),
        )
        r = run_program(p, {"n": 6}, ft)
        assert r.env["acc"] == 15
        assert r.notifications == {"p": True}

    def test_loop_zero_iterations(self, ft):
        p = program("p", ("n",), assign("i", 0), while_(lt(var("i"), 0), assign("i", add(var("i"), 1))), notify("p", True))
        r = run_program(p, {"n": 0}, ft)
        assert r.env["i"] == 0

    def test_duplicate_notification_rejected(self, ft):
        p = program("p", (), notify("p", True), notify("p", False))
        with pytest.raises(NotificationClash):
            run_program(p, {}, ft)

    def test_notify_non_bool_rejected(self, ft):
        p = program("p", (), notify("p", add(1, 2)))
        with pytest.raises(InterpError):
            run_program(p, {}, ft)

    def test_missing_argument_rejected(self, ft):
        p = program("p", ("n",), notify("p", True))
        with pytest.raises(InterpError):
            run_program(p, {}, ft)

    def test_step_limit(self, ft):
        p = program("p", (), assign("i", 0), while_(ge(var("i"), 0), assign("i", add(var("i"), 1))))
        interp = Interpreter(ft, max_steps=10_000)
        with pytest.raises(StepLimitExceeded):
            interp.run(p, {})


class TestCostAccounting:
    def test_branch_cost_charged_once_per_test(self, ft):
        cm = CostModel()
        p = program("p", ("n",), ite_notify("p", lt(arg("n"), 10)))
        r = run_program(p, {"n": 5}, ft)
        # cond: arg(1) + const(0) + cmp(1) = 2 ; branch 2 ; notify: const 0 + 1
        assert r.cost == 2 + cm.branch + 1

    def test_loop_cost_includes_final_test(self, ft):
        cm = CostModel()
        body = assign("i", add(var("i"), 1))
        p = program("p", (), assign("i", 0), while_(lt(var("i"), 2), body))
        r = run_program(p, {}, ft)
        init = 0 + cm.assign
        test = 1 + 0 + cm.cmp + cm.branch  # var + const + cmp + branch
        body_cost = 1 + 0 + cm.arith + cm.assign
        assert r.cost == init + 3 * test + 2 * body_cost

    def test_memoization_does_not_change_cost(self):
        calls = []
        ft = FunctionTable([LibraryFunction("f", lambda x: calls.append(x) or x, cost=100)])
        p = program("p", ("n",), assign("a", call("f", arg("n"))), assign("b", call("f", arg("n"))), notify("p", eq(var("a"), var("b"))))
        r_plain = run_program(p, {"n": 1}, ft)
        calls.clear()
        r_memo = run_program(p, {"n": 1}, ft, memoize_calls=True)
        assert len(calls) == 1  # second call served from cache
        assert r_memo.cost == r_plain.cost  # accounting unchanged

    def test_eval_expr_resets_memo_cache_between_evaluations(self):
        """Back-to-back ``eval_expr`` calls must not share the memo cache.

        Regression test: ``eval_expr`` used to reset only the step counter,
        so a memoised call could return a stale value after the library
        function's behaviour changed between evaluations.
        """

        calls = []
        ft = FunctionTable(
            [LibraryFunction("f", lambda x: calls.append(x) or len(calls), cost=10)]
        )
        interp = Interpreter(ft, memoize_calls=True)
        v1, c1 = interp.eval_expr(call("f", 7), {})
        v2, c2 = interp.eval_expr(call("f", 7), {})
        assert calls == [7, 7]  # the second evaluation re-ran the function
        assert (v1, v2) == (1, 2)
        assert c1 == c2  # accounting identical either way

    def test_eval_expr_resets_elapsed_latency_state(self, ft):
        interp = Interpreter(ft)
        p = program("p", (), assign("x", 1), notify("p", lt(var("x"), 2)))
        interp.run(p, {})
        interp.eval_expr(add(1, 2), {})
        r = interp.run(p, {})
        # Latency bookkeeping starts from zero on every entry point.
        assert r.notification_costs["p"] == r.cost


class TestSequentialExecution:
    def test_costs_and_notifications_add_up(self, ft):
        p1 = program("q1", ("n",), ite_notify("q1", lt(arg("n"), 10)))
        p2 = program("q2", ("n",), ite_notify("q2", gt(arg("n"), 3)))
        r = run_sequentially([p1, p2], {"n": 5}, ft)
        assert r.notifications == {"q1": True, "q2": True}
        r1 = run_program(p1, {"n": 5}, ft)
        r2 = run_program(p2, {"n": 5}, ft)
        assert r.cost == r1.cost + r2.cost

    def test_duplicate_pid_across_programs_rejected(self, ft):
        p1 = program("q", (), notify("q", True))
        p2 = program("q", (), notify("q", False))
        with pytest.raises(NotificationClash):
            run_sequentially([p1, p2], {}, ft)
