"""The typed random program generator: replayability and well-formedness."""

import pytest

from repro.lang.ast import Program
from repro.lang.interp import Interpreter
from repro.lang.visitors import notified_pids, stmt_size
from repro.testing import SCHEMAS, case_inputs, generate_case, schema_dataset

SPECS = [(seed, schema, size) for seed in (0, 7) for schema in sorted(SCHEMAS) for size in (1, 3)]


@pytest.mark.parametrize("seed,schema,size", SPECS)
def test_generation_is_deterministic(seed, schema, size):
    first = generate_case(seed, schema, size)
    second = generate_case(seed, schema, size)
    assert first == second  # frozen dataclasses: structural equality


def test_different_seeds_differ():
    assert generate_case(0, "weather", 3) != generate_case(1, "weather", 3)


@pytest.mark.parametrize("seed,schema,size", SPECS)
def test_batches_are_well_formed(seed, schema, size):
    programs = generate_case(seed, schema, size)
    assert len(programs) >= 2
    pids = [p.pid for p in programs]
    assert len(set(pids)) == len(pids), "batch pids must be disjoint"
    for p in programs:
        assert isinstance(p, Program)
        assert p.params == ("row",)
        # Exactly one notification target: the program's own pid.
        assert notified_pids(p.body) == {p.pid}
        assert stmt_size(p.body) >= 1


@pytest.mark.parametrize("schema", sorted(SCHEMAS))
def test_programs_run_on_their_schema(schema):
    """Totality: every generated program terminates and notifies once."""

    dataset = schema_dataset(schema)
    interp = Interpreter(dataset.functions)
    inputs = case_inputs(schema)
    assert inputs, "every schema must supply sample inputs"
    for seed in range(5):
        for p in generate_case(seed, schema, 3):
            for args in inputs:
                result = interp.run(p, args)
                assert set(result.notifications) == {p.pid}
                assert isinstance(result.notifications[p.pid], bool)


def test_unknown_schema_rejected():
    with pytest.raises(ValueError, match="unknown schema"):
        generate_case(0, "nope", 2)
    with pytest.raises(ValueError, match="unknown schema"):
        schema_dataset("nope")


def test_n_programs_pin():
    programs = generate_case(3, "stock", 2, n_programs=4)
    assert len(programs) == 4
