"""The derivation recorder and cost attribution (repro.provenance)."""

import json
import pickle

import pytest

import repro.provenance.recorder as recorder_mod
from repro.consolidation import consolidate_all
from repro.datasets import generate_weather
from repro.provenance import (
    NULL_RECORDER,
    DerivationRecorder,
    attribute_costs,
)
from repro.provenance.recorder import _strip_timings
from repro.queries import DOMAIN_QUERIES


@pytest.fixture(scope="module")
def weather():
    dataset = generate_weather(cities=12)
    programs = DOMAIN_QUERIES["weather"].make_batch(dataset, "Mix", n=6, seed=1)
    return dataset, programs


class TestRecorderUnit:
    def test_scopes_nest_and_pop(self):
        rec = DerivationRecorder()
        rec.begin_pair("a", "b")
        with rec.rule("If5", "outer"):
            rec.leaf("Assign", "x := 1")
            with rec.rule("If3"):
                rec.entailment("entails", "psi", "q", True, 0.5, "smt")
            rec.rewrite("site", "x+0", "x", 3, 1)
        tree = rec.end_pair("a&b", 1.25)
        assert tree is rec.trees[0]
        root = tree.root
        assert root.rule == "Ω"
        (if5,) = root.children
        assert [c.rule for c in if5.children] == ["Assign", "If3"]
        assert if5.children[1].entailments[0].verdict is True
        assert if5.rewrites[0].cost_delta == -2
        assert tree.rule_counts() == {"If5": 1, "Assign": 1, "If3": 1}
        assert tree.smt_seconds() == 0.5

    def test_events_outside_pair_are_dropped(self):
        rec = DerivationRecorder()
        rec.entailment("entails", "", "q", False, 0.0, "memo")
        rec.leaf("Assign")
        assert rec.end_pair("x", 0.0) is None
        assert rec.trees == []

    def test_to_dict_is_sparse_and_json_able(self):
        rec = DerivationRecorder()
        rec.begin_pair("a", "b")
        rec.leaf("Com")
        tree = rec.end_pair("a&b", 0.5)
        doc = tree.to_dict()
        json.dumps(doc)  # must be pure JSON types
        assert doc["root"]["children"] == [{"rule": "Com"}]
        assert doc["seconds"] == 0.5
        stripped = tree.to_dict(include_timings=False)
        assert stripped["seconds"] == 0.0

    def test_strip_timings_recurses(self):
        doc = {"seconds": 2.0, "inner": [{"seconds": 1.0, "keep": 7}]}
        assert _strip_timings(doc) == {
            "seconds": 0.0,
            "inner": [{"seconds": 0.0, "keep": 7}],
        }

    def test_null_recorder_is_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.begin_pair("a", "b")
        with NULL_RECORDER.rule("If5"):
            NULL_RECORDER.leaf("Assign")
            NULL_RECORDER.entailment("entails", "", "q", True, 0.0, "smt")
        assert NULL_RECORDER.end_pair("x", 0.0) is None
        assert NULL_RECORDER.trees == ()
        assert NULL_RECORDER.current is None


class TestRecordedConsolidation:
    def test_derivations_land_on_report(self, weather):
        dataset, programs = weather
        report = consolidate_all(programs[:2], dataset.functions, provenance=True)
        assert len(report.derivations) == 1
        tree = report.derivations[0]
        assert tree.left == programs[0].pid and tree.right == programs[1].pid
        assert tree.merged == report.program.pid
        assert tree.seconds > 0
        counts = tree.rule_counts()
        assert counts, "at least one calculus rule must be recorded"
        # Every recorded rule is one the calculus actually has.
        known = {
            "Assign", "Step", "Com", "Seq", "If1", "If2", "If3", "If4", "If5",
            "Loop2", "Loop3", "LoopDrop",
        }
        assert set(counts) <= known, counts

    def test_entailments_have_contexts_and_sources(self, weather):
        dataset, programs = weather
        report = consolidate_all(programs[:2], dataset.functions, provenance=True)
        entailments = report.derivations[0].entailments()
        assert entailments
        assert {e.source for e in entailments} <= {
            "smt", "memo", "precheck", "syntactic"
        }
        smt = [e for e in entailments if e.source == "smt"]
        assert smt, "the Mix pair needs at least one real solver check"
        assert all(e.query for e in smt)
        assert all(e.seconds >= 0 for e in entailments)

    def test_off_by_default_and_trees_pickle(self, weather):
        dataset, programs = weather
        off = consolidate_all(programs[:2], dataset.functions)
        assert off.derivations == []
        on = consolidate_all(programs[:3], dataset.functions, provenance=True)
        assert len(on.derivations) == 2  # two pair merges for a batch of 3
        clones = pickle.loads(pickle.dumps(on.derivations))
        assert [t.merged for t in clones] == [t.merged for t in on.derivations]

    def test_recording_off_allocates_no_event_objects(self, weather, monkeypatch):
        """The NULL-twin promise: with provenance off, not a single
        derivation dataclass may be constructed anywhere in the pipeline."""

        def boom(*args, **kwargs):
            raise AssertionError("derivation object allocated with recording off")

        for name in ("Entailment", "Rewrite", "Heuristic", "DerivationTree"):
            monkeypatch.setattr(recorder_mod, name, boom)
        dataset, programs = weather
        report = consolidate_all(programs[:2], dataset.functions)
        assert report.derivations == []


class TestAttribution:
    class _Stats:
        def __init__(self, records_in, udf_cost, seconds=0.01):
            self.records_in = records_in
            self.udf_cost = udf_cost
            self.seconds = seconds

    def test_flags(self):
        per_operator = {
            "whereMany[2]": self._Stats(100, 1000),     # observed 10
            "whereConsolidated[2]": self._Stats(100, 400),  # observed 4
            "loopy": self._Stats(100, 100),             # observed 1
            "input": self._Stats(100, 0),               # no prediction entry
        }
        predicted = {
            "whereMany[2]": 12,        # ratio 1.2 -> ok
            "whereConsolidated[2]": 2,  # ratio 0.5 -> bound violated
            "loopy": None,             # unbounded
        }
        out = {a.operator: a for a in attribute_costs(per_operator, predicted)}
        assert set(out) == {"whereMany[2]", "whereConsolidated[2]", "loopy"}
        assert out["whereMany[2]"].flag == "ok"
        assert out["whereMany[2]"].ratio == pytest.approx(1.2)
        assert out["whereConsolidated[2]"].flag == "bound-violated"
        assert out["whereConsolidated[2]"].mispredicted
        assert out["loopy"].flag == "unbounded"

    def test_loose_bound_threshold(self):
        per_operator = {"op": self._Stats(10, 10)}  # observed 1
        assert attribute_costs(per_operator, {"op": 4})[0].flag == "loose-bound"
        assert (
            attribute_costs(per_operator, {"op": 4}, loose_threshold=5.0)[0].flag
            == "ok"
        )

    def test_metrics_exported_on_live_telemetry(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        per_operator = {"op": self._Stats(10, 10)}
        attribute_costs(per_operator, {"op": 40}, telemetry=telemetry)
        snapshot = telemetry.metrics.snapshot()
        gauges = {g["name"]: g["value"] for g in snapshot["gauges"]}
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        assert gauges["provenance_attributed_operators"] == 1
        assert gauges["provenance_operator_cost_ratio"] == 40.0
        assert counters["provenance_mispredicted_operators_total"] == 1
