"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_args_option, build_parser, main


@pytest.fixture
def progs(tmp_path):
    a = tmp_path / "a.prog"
    a.write_text(
        "program hot(row) {\n"
        "  t := monthly_avg_temp(@row, 7);\n"
        "  if (t > 50) { notify hot true; } else { notify hot false; }\n"
        "}\n"
    )
    b = tmp_path / "b.prog"
    b.write_text(
        "program cold(row) {\n"
        "  u := monthly_avg_temp(@row, 7);\n"
        "  if (u < 0) { notify cold true; } else { notify cold false; }\n"
        "}\n"
    )
    return str(a), str(b)


class TestConsolidateCommand:
    def test_merges_and_prints(self, progs, capsys):
        rc = main(["consolidate", *progs, "--domain", "weather"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "notify hot" in out and "notify cold" in out
        assert out.count("monthly_avg_temp") == 1  # call shared

    def test_verification_flag(self, progs, capsys):
        rc = main(["consolidate", *progs, "--domain", "weather", "--verify", "20"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "verification on 20 rows: OK" in err

    def test_if_rule_mode_flag(self, progs, capsys):
        rc = main(["consolidate", *progs, "--domain", "weather", "--if-rule-mode", "always_if5"])
        assert rc == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["consolidate", str(tmp_path / "nope.prog")])

    def test_parse_error_reported(self, tmp_path):
        bad = tmp_path / "bad.prog"
        bad.write_text("program { oops")
        with pytest.raises(SystemExit):
            main(["consolidate", str(bad)])

    def test_unknown_domain(self, progs):
        with pytest.raises(SystemExit):
            main(["consolidate", *progs, "--domain", "mars"])


class TestRunCommand:
    def test_runs_and_prints_notification(self, progs, capsys):
        rc = main(["run", progs[0], "--domain", "weather", "--args", "row=3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("hot: ")
        assert "latency" in out

    def test_bad_args_syntax(self, progs):
        with pytest.raises(SystemExit):
            main(["run", progs[0], "--domain", "weather", "--args", "rowX3"])


class TestOptionParsing:
    def test_parse_args_option(self):
        assert _parse_args_option("a=1,b=hello") == {"a": 1, "b": "hello"}
        assert _parse_args_option("") == {}

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExperimentCommands:
    def test_latency_command(self, capsys):
        rc = main(["latency", "--n-udfs", "4", "--priority-index", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sequential_mean" in out

    def test_figure10_command(self, capsys):
        rc = main(["figure10", "--sweep", "2,4", "--articles", "40"])
        assert rc == 0
        assert "whereMany_total" in capsys.readouterr().out
