"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_args_option, build_parser, main


@pytest.fixture
def progs(tmp_path):
    a = tmp_path / "a.prog"
    a.write_text(
        "program hot(row) {\n"
        "  t := monthly_avg_temp(@row, 7);\n"
        "  if (t > 50) { notify hot true; } else { notify hot false; }\n"
        "}\n"
    )
    b = tmp_path / "b.prog"
    b.write_text(
        "program cold(row) {\n"
        "  u := monthly_avg_temp(@row, 7);\n"
        "  if (u < 0) { notify cold true; } else { notify cold false; }\n"
        "}\n"
    )
    return str(a), str(b)


class TestConsolidateCommand:
    def test_merges_and_prints(self, progs, capsys):
        rc = main(["consolidate", *progs, "--domain", "weather"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "notify hot" in out and "notify cold" in out
        assert out.count("monthly_avg_temp") == 1  # call shared

    def test_verification_flag(self, progs, capsys):
        rc = main(["consolidate", *progs, "--domain", "weather", "--verify", "20"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "verification on 20 rows: OK" in err

    def test_if_rule_mode_flag(self, progs, capsys):
        rc = main(["consolidate", *progs, "--domain", "weather", "--if-rule-mode", "always_if5"])
        assert rc == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["consolidate", str(tmp_path / "nope.prog")])

    def test_parse_error_reported(self, tmp_path):
        bad = tmp_path / "bad.prog"
        bad.write_text("program { oops")
        with pytest.raises(SystemExit):
            main(["consolidate", str(bad)])

    def test_unknown_domain(self, progs):
        with pytest.raises(SystemExit):
            main(["consolidate", *progs, "--domain", "mars"])


class TestRunCommand:
    def test_runs_and_prints_notification(self, progs, capsys):
        rc = main(["run", progs[0], "--domain", "weather", "--args", "row=3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("hot: ")
        assert "latency" in out

    def test_bad_args_syntax(self, progs):
        with pytest.raises(SystemExit):
            main(["run", progs[0], "--domain", "weather", "--args", "rowX3"])


class TestOptionParsing:
    def test_parse_args_option(self):
        assert _parse_args_option("a=1,b=hello") == {"a": 1, "b": "hello"}
        assert _parse_args_option("") == {}

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExperimentCommands:
    def test_latency_command(self, capsys):
        rc = main(["latency", "--n-udfs", "4", "--priority-index", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sequential_mean" in out

    def test_figure10_command(self, capsys):
        rc = main(["figure10", "--sweep", "2,4", "--articles", "40"])
        assert rc == 0
        assert "whereMany_total" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_figure9_domain_and_metrics_out(self, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        rc = main(
            [
                "figure9",
                "--domain",
                "weather",
                "--n-udfs",
                "4",
                "--scale",
                "0.02",
                "--metrics-out",
                str(out),
            ]
        )
        assert rc == 0
        assert "metrics written" in capsys.readouterr().err
        doc = json.loads(out.read_text())
        assert doc["command"] == "figure9"
        assert {r["domain"] for r in doc["rows"]} == {"weather"}
        names = {c["name"] for c in doc["metrics"]["counters"]}
        assert "dataflow_records_total" in names
        assert "smt_checks" in names
        assert any(n.startswith("dataflow_operator_records_in") for n in names)
        assert any(n.startswith("compile_cache") for n in names)
        hists = {h["name"] for h in doc["metrics"]["histograms"]}
        assert "smt_check_seconds" in hists
        # Every figure row carries its own per-experiment snapshot.
        assert all("metrics" in r for r in doc["rows"])

    def test_trace_adds_spans(self, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        rc = main(
            [
                "--trace",
                "figure9",
                "--domain",
                "weather",
                "--n-udfs",
                "2",
                "--scale",
                "0.02",
                "--metrics-out",
                str(out),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        span_names = {s["name"] for s in doc["spans"]}
        assert "dataflow.run" in span_names
        assert "consolidate.batch" in span_names

    def test_prometheus_artifact(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        rc = main(
            ["consolidate", "--domain", "weather", "--metrics-out", str(out)]
            + _two_progs(tmp_path)
        )
        assert rc == 0
        capsys.readouterr()
        text = out.read_text()
        assert "# TYPE consolidation_pairs_total counter" in text
        assert "consolidation_pair_seconds_bucket" in text

    def test_consolidate_executor_flag(self, tmp_path, capsys):
        rc = main(
            ["consolidate", "--domain", "weather", "--executor", "thread"]
            + _two_progs(tmp_path)
        )
        assert rc == 0
        assert "executor thread" in capsys.readouterr().err


def _two_progs(tmp_path):
    a = tmp_path / "x.prog"
    a.write_text(
        "program hot(row) {\n"
        "  t := monthly_avg_temp(@row, 7);\n"
        "  if (t > 50) { notify hot true; } else { notify hot false; }\n"
        "}\n"
    )
    b = tmp_path / "y.prog"
    b.write_text(
        "program cold(row) {\n"
        "  u := monthly_avg_temp(@row, 7);\n"
        "  if (u < 0) { notify cold true; } else { notify cold false; }\n"
        "}\n"
    )
    return [str(a), str(b)]
