"""End-to-end reproduction of the paper's worked examples (Sections 2 & 4).

Each test consolidates the literal programs from the paper and checks both
the soundness contract (identical notifications, cost never higher) and
the specific optimisations the paper highlights.
"""

import pytest

from repro.consolidation import Consolidator, check_soundness
from repro.lang import (
    FunctionTable,
    LibraryFunction,
    STR,
    add,
    arg,
    assign,
    block,
    call,
    eq,
    ge,
    gt,
    if_,
    ite_notify,
    le,
    lt,
    notify,
    program,
    program_to_str,
    run_sequentially,
    run_program,
    sub,
    var,
    while_,
)
from repro.lang.visitors import stmt_calls


@pytest.fixture
def flight_functions():
    airlines = ["United", "Southwest", "Delta", "JetBlue"]
    return FunctionTable(
        [
            LibraryFunction(
                "airlineName", lambda fi: airlines[fi % 4], cost=20, result_sort=STR
            ),
            LibraryFunction(
                "toLower", lambda s: s.lower(), cost=15, result_sort=STR, arg_sorts=(STR,)
            ),
            LibraryFunction("price", lambda fi: (fi * 37) % 400, cost=20),
        ]
    )


def example1_f1():
    """f1: flights operated by United or Southwest."""

    return program(
        "f1",
        ("fi",),
        assign("name", call("toLower", call("airlineName", arg("fi")))),
        if_(
            eq(var("name"), "united"),
            notify("f1", True),
            ite_notify("f1", eq(var("name"), "southwest")),
        ),
    )


def example1_f2():
    """f2: cheaper than $200 and operated by United."""

    return program(
        "f2",
        ("fi",),
        if_(
            ge(call("price", arg("fi")), 200),
            notify("f2", False),
            ite_notify("f2", eq(call("toLower", call("airlineName", arg("fi"))), "united")),
        ),
    )


class TestExample1:
    def test_sound_on_all_inputs(self, flight_functions):
        f1, f2 = example1_f1(), example1_f2()
        merged = Consolidator(flight_functions).consolidate(f1, f2)
        report = check_soundness(
            [f1, f2], merged, flight_functions, [{"fi": i} for i in range(200)]
        )
        assert report.ok, report.violations

    def test_name_computed_once(self, flight_functions):
        """The toLower/airlineName chain appears exactly once in the merge."""

        merged = Consolidator(flight_functions).consolidate(example1_f1(), example1_f2())
        text = program_to_str(merged)
        assert text.count("toLower") == 1
        assert text.count("airlineName") == 1

    def test_united_test_not_duplicated(self, flight_functions):
        """f2's united test is eliminated inside f1's branches."""

        merged = Consolidator(flight_functions).consolidate(example1_f1(), example1_f2())
        text = program_to_str(merged)
        assert text.count('"united"') == 1

    def test_strict_improvement(self, flight_functions):
        f1, f2 = example1_f1(), example1_f2()
        merged = Consolidator(flight_functions).consolidate(f1, f2)
        report = check_soundness(
            [f1, f2], merged, flight_functions, [{"fi": i} for i in range(200)]
        )
        assert report.speedup > 1.3


@pytest.fixture
def weather_functions():
    return FunctionTable(
        [LibraryFunction("getTempOfMonth", lambda wi, m: (wi * 3 + m * 7) % 25 - 5, cost=30)]
    )


def example2_g1():
    """g1: minimum monthly temperature above 15."""

    return program(
        "g1",
        ("wi",),
        assign("min", call("getTempOfMonth", arg("wi"), 1)),
        assign("i", 2),
        while_(
            le(var("i"), 12),
            block(
                assign("t", call("getTempOfMonth", arg("wi"), var("i"))),
                if_(lt(var("t"), var("min")), assign("min", var("t"))),
                assign("i", add(var("i"), 1)),
            ),
        ),
        ite_notify("g1", gt(var("min"), 15)),
    )


def example2_g2():
    """g2: maximum monthly temperature below 10."""

    return program(
        "g2",
        ("wi",),
        assign("j", 1),
        assign("max", call("getTempOfMonth", arg("wi"), var("j"))),
        while_(
            lt(var("j"), 12),
            block(
                assign("j", add(var("j"), 1)),
                assign("cur", call("getTempOfMonth", arg("wi"), var("j"))),
                if_(gt(var("cur"), var("max")), assign("max", var("cur"))),
            ),
        ),
        ite_notify("g2", lt(var("max"), 10)),
    )


class TestExample2:
    def test_sound_on_all_inputs(self, weather_functions):
        g1, g2 = example2_g1(), example2_g2()
        merged = Consolidator(weather_functions).consolidate(g1, g2)
        report = check_soundness(
            [g1, g2], merged, weather_functions, [{"wi": i} for i in range(40)]
        )
        assert report.ok, report.violations

    def test_loops_fused(self, weather_functions):
        """Loop 2 fires: a single loop remains in the merged program."""

        c = Consolidator(weather_functions)
        c.consolidate(example2_g1(), example2_g2())
        assert "Loop2" in c.trace

    def test_call_shared_in_body(self, weather_functions):
        """getTempOfMonth is called once per month, not twice."""

        g1, g2 = example2_g1(), example2_g2()
        merged = Consolidator(weather_functions).consolidate(g1, g2)
        from repro.lang import Interpreter

        calls = []
        counting = FunctionTable(
            [
                LibraryFunction(
                    "getTempOfMonth",
                    lambda wi, m: calls.append(m) or (wi * 3 + m * 7) % 25 - 5,
                    cost=30,
                )
            ]
        )
        Interpreter(counting).run(merged, {"wi": 3})
        # 12 months, one call each (g1 and g2 both scan months 1..12).
        assert len(calls) == 12

    def test_substantial_speedup(self, weather_functions):
        g1, g2 = example2_g1(), example2_g2()
        merged = Consolidator(weather_functions).consolidate(g1, g2)
        report = check_soundness(
            [g1, g2], merged, weather_functions, [{"wi": i} for i in range(40)]
        )
        assert report.speedup > 1.5


class TestExample4:
    """Figure 4: x := f(a)+1 consolidated with y := f(a)-1."""

    def test_second_call_replaced(self):
        ft = FunctionTable([LibraryFunction("f", lambda a: a * a, cost=60)])
        p1 = program("p1", ("a",), assign("x", add(call("f", arg("a")), 1)), notify("p1", True))
        p2 = program("p2", ("a",), assign("y", sub(call("f", arg("a")), 1)), notify("p2", True))
        merged = Consolidator(ft).consolidate(p1, p2)
        text = program_to_str(merged)
        assert text.count("f(") == 1  # only one call to f survives
        report = check_soundness([p1, p2], merged, ft, [{"a": i} for i in range(10)])
        assert report.ok


class TestExample5:
    """Figure 6: opposite guards x > a vs x <= a merge into one test."""

    def test_one_test_two_notifies(self):
        ft = FunctionTable([])
        p1 = program("n1", ("x", "a"), ite_notify("n1", gt(arg("x"), arg("a"))))
        p2 = program("n2", ("x", "a"), ite_notify("n2", le(arg("x"), arg("a"))))
        merged = Consolidator(ft).consolidate(p1, p2)
        # Exactly one comparison survives in the merged program.
        text = program_to_str(merged)
        assert text.count("<") == 1
        inputs = [{"x": x, "a": a} for x in range(-3, 4) for a in range(-3, 4)]
        report = check_soundness([p1, p2], merged, ft, inputs)
        assert report.ok
        assert report.speedup > 1.0


class TestExample6:
    """Section 4's loop-offset example: i counts down from a, j from a-1."""

    def _p1(self):
        return program(
            "p1",
            ("alpha",),
            assign("i", arg("alpha")),
            assign("x", 0),
            while_(
                gt(var("i"), 0),
                block(
                    assign("i", sub(var("i"), 1)),
                    assign("t1", call("f", var("i"))),
                    assign("x", add(var("x"), var("t1"))),
                ),
            ),
            ite_notify("p1", gt(var("x"), 10)),
        )

    def _p2(self):
        return program(
            "p2",
            ("alpha",),
            assign("j", sub(arg("alpha"), 1)),
            assign("y", arg("alpha")),
            while_(
                ge(var("j"), 0),
                block(
                    assign("t2", call("f", var("j"))),
                    assign("y", add(var("y"), var("t2"))),
                    assign("j", sub(var("j"), 1)),
                ),
            ),
            ite_notify("p2", gt(var("y"), 10)),
        )

    @pytest.fixture
    def ft(self):
        return FunctionTable([LibraryFunction("f", lambda v: (v * v) % 7, cost=40)])

    def test_loop2_applies(self, ft):
        c = Consolidator(ft)
        c.consolidate(self._p1(), self._p2())
        assert "Loop2" in c.trace

    def test_sound_and_faster(self, ft):
        p1, p2 = self._p1(), self._p2()
        merged = Consolidator(ft).consolidate(p1, p2)
        report = check_soundness([p1, p2], merged, ft, [{"alpha": n} for n in range(12)])
        assert report.ok, report.violations
        assert report.speedup > 1.3

    def test_f_called_once_per_iteration(self, ft):
        p1, p2 = self._p1(), self._p2()
        merged = Consolidator(ft).consolidate(p1, p2)
        calls = []
        counting = FunctionTable(
            [LibraryFunction("f", lambda v: calls.append(v) or (v * v) % 7, cost=40)]
        )
        from repro.lang import Interpreter

        Interpreter(counting).run(merged, {"alpha": 6})
        assert len(calls) == 6  # per iteration, not twice per iteration
