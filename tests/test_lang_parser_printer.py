"""Parser/printer tests, including the round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import (
    Arg,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    IntConst,
    Not,
    ParseError,
    StrConst,
    Var,
    expr_to_str,
    parse_expr,
    parse_program,
    parse_stmt,
    program_to_str,
    stmt_to_str,
)


class TestExprParsing:
    def test_precedence_mul_over_add(self):
        assert parse_expr("1 + 2 * 3") == BinOp("+", IntConst(1), BinOp("*", IntConst(2), IntConst(3)))

    def test_parens_override(self):
        assert parse_expr("(1 + 2) * 3") == BinOp("*", BinOp("+", IntConst(1), IntConst(2)), IntConst(3))

    def test_left_associativity(self):
        assert parse_expr("1 - 2 - 3") == BinOp("-", BinOp("-", IntConst(1), IntConst(2)), IntConst(3))

    def test_and_binds_tighter_than_or(self):
        e = parse_expr("true or false and true")
        assert isinstance(e, BoolOp) and e.op == "or"

    def test_gt_normalised(self):
        assert parse_expr("x > 3") == Cmp("<", IntConst(3), Var("x"))

    def test_ge_normalised(self):
        assert parse_expr("x >= 3") == Cmp("<=", IntConst(3), Var("x"))

    def test_ne_normalised(self):
        assert parse_expr("x != 3") == Not(Cmp("=", Var("x"), IntConst(3)))

    def test_args_and_vars(self):
        assert parse_expr("@row") == Arg("row")
        assert parse_expr("q1.x") == Var("q1.x")

    def test_call_with_args(self):
        assert parse_expr("f(@a, 1 + x)") == Call("f", (Arg("a"), BinOp("+", IntConst(1), Var("x"))))

    def test_nullary_call(self):
        assert parse_expr("now()") == Call("now", ())

    def test_string_literal(self):
        assert parse_expr('"united"') == StrConst("united")

    def test_string_escapes(self):
        assert parse_expr('"a\\"b"') == StrConst('a"b')

    def test_unary_minus(self):
        # The printer emits negative IntConst as "(-120)"; the parser must
        # round-trip it, and a bare "-x" folds to 0 - x.
        assert parse_expr("(-120)") == IntConst(-120)
        assert parse_expr("-5 + x") == BinOp("+", IntConst(-5), Var("x"))
        assert parse_expr("-x") == BinOp("-", IntConst(0), Var("x"))
        assert parse_expr(expr_to_str(IntConst(-120))) == IntConst(-120)

    def test_c_style_connectives(self):
        assert parse_expr("true && false") == BoolOp("and", BoolConst(True), BoolConst(False))
        assert parse_expr("true || false") == BoolOp("or", BoolConst(True), BoolConst(False))

    def test_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse_expr("1 +")

    def test_error_on_trailing(self):
        with pytest.raises(ParseError):
            parse_expr("1 2")


class TestStmtParsing:
    def test_program_roundtrip(self):
        src = """
        program q(fi, wi) {
          x := f(@fi) + 1;
          if (x < 10) { notify q true; } else {
            while (x > 0) { x := x - 1; }
            notify q false;
          }
        }
        """
        p = parse_program(src)
        assert parse_program(program_to_str(p)) == p

    def test_comments_ignored(self):
        s = parse_stmt("x := 1; # a comment\ny := 2;")
        assert stmt_to_str(s) == "x := 1;\ny := 2;"

    def test_skip(self):
        assert stmt_to_str(parse_stmt("skip;")) == "skip;"

    def test_keyword_not_identifier(self):
        with pytest.raises(ParseError):
            parse_stmt("while := 1;")


# -- property: printer output re-parses to the same tree ---------------------

_names = st.sampled_from(["x", "y", "q1.t", "acc"])
_arg_names = st.sampled_from(["row", "fi"])


def _int_exprs(depth):
    base = st.one_of(
        st.integers(min_value=-99, max_value=99).map(IntConst),
        _names.map(Var),
        _arg_names.map(Arg),
    )
    if depth <= 0:
        return base
    sub = _int_exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from("+-*"), sub, sub).map(lambda t: BinOp(*t)),
        st.tuples(sub, sub).map(lambda t: Call("f", t)),
    )


def _bool_exprs(depth):
    ints = _int_exprs(2)
    base = st.one_of(
        st.booleans().map(BoolConst),
        st.tuples(st.sampled_from(["<", "<=", "="]), ints, ints).map(lambda t: Cmp(*t)),
    )
    if depth <= 0:
        return base
    sub = _bool_exprs(depth - 1)
    return st.one_of(
        base,
        sub.map(Not),
        st.tuples(st.sampled_from(["and", "or"]), sub, sub).map(lambda t: BoolOp(*t)),
    )


@given(_int_exprs(3))
@settings(max_examples=150)
def test_int_expr_roundtrip(e):
    assert parse_expr(expr_to_str(e)) == e


@given(_bool_exprs(3))
@settings(max_examples=150)
def test_bool_expr_roundtrip(e):
    assert parse_expr(expr_to_str(e)) == e
