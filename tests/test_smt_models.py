"""Tests for model extraction (verified witnesses for satisfiable formulas)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import (
    Solver,
    app,
    eq_f,
    evaluate_formula,
    fand,
    fnot,
    for_,
    le_f,
    lia_model,
    lt_f,
    ne_f,
    num,
    sym,
    t_add,
    t_scale,
    t_sub,
)
from repro.smt.lia import LinCon
from repro.smt.models import evaluate_lincon, literals_model
from repro.smt.combine import TheoryLiteral

x, y, z = sym("x"), sym("y"), sym("z")


def con(coeffs, const):
    return LinCon.make(coeffs, const)


class TestLiaModel:
    def test_trivial(self):
        assert lia_model([], []) == {}

    def test_bounds(self):
        # 2 <= v <= 4
        m = lia_model([], [con({"v": -1}, 2), con({"v": 1}, -4)])
        assert m is not None and 2 <= m["v"] <= 4

    def test_equality_chain(self):
        m = lia_model(
            [con({"a": 1, "b": -1}, 0), con({"b": 1}, -7)],
            [],
        )
        assert m == {"a": 7, "b": 7} or (m["a"] == m["b"] == 7)

    def test_unsat_returns_none(self):
        assert lia_model([], [con({"v": 1}, 0), con({"v": -1}, 1)]) is None

    def test_diseq_avoided(self):
        # 0 <= v <= 1, v != 0  ==>  v = 1
        m = lia_model([], [con({"v": -1}, 0), con({"v": 1}, -1)], [con({"v": 1}, 0)])
        assert m is not None and m["v"] == 1

    def test_multi_var_system(self):
        # a + b <= 3, a >= 1, b >= 1
        les = [con({"a": 1, "b": 1}, -3), con({"a": -1}, 1), con({"b": -1}, 1)]
        m = lia_model([], les)
        assert m is not None
        assert m["a"] + m["b"] <= 3 and m["a"] >= 1 and m["b"] >= 1

    def test_model_verifies_all_constraint_kinds(self):
        eqs = [con({"a": 1, "b": -2}, 0)]
        les = [con({"a": 1}, -10), con({"a": -1}, 0)]
        nes = [con({"a": 1}, -4)]
        m = lia_model(eqs, les, nes)
        assert m is not None
        assert evaluate_lincon(eqs[0], m) == 0
        assert all(evaluate_lincon(le, m) <= 0 for le in les)
        assert evaluate_lincon(nes[0], m) != 0


class TestLiteralsModel:
    def test_euf_functionality_respected(self):
        lits = [
            TheoryLiteral("eq", t_sub(x, y)),
            TheoryLiteral("eq", t_sub(app("f", x), num(3))),
        ]
        model = literals_model(lits)
        assert model is not None
        variables, functions = model
        # f at the (shared) value of x/y must be 3.
        assert functions["f"][(variables["x"],)] == 3
        assert variables["x"] == variables["y"]

    def test_diseq_respected(self):
        lits = [
            TheoryLiteral("ne", t_sub(x, y)),
            TheoryLiteral("le", t_sub(x, y)),
        ]
        model = literals_model(lits)
        assert model is not None
        variables, _functions = model
        assert variables["x"] < variables["y"]

    def test_inconsistent_returns_none(self):
        lits = [
            TheoryLiteral("eq", t_sub(x, y)),
            TheoryLiteral("ne", t_sub(app("f", x), app("f", y))),
        ]
        assert literals_model(lits) is None


class TestFormulaModel:
    def test_simple(self):
        s = Solver()
        f = fand(le_f(num(3), x), lt_f(x, y))
        model = s.model(f)
        assert model is not None
        assert evaluate_formula(f, *model)

    def test_disjunction_picks_branch(self):
        s = Solver()
        f = for_(fand(le_f(x, num(-5)), le_f(num(-5), x)), eq_f(x, num(9)))
        model = s.model(f)
        assert model is not None
        assert model[0]["x"] in (-5, 9)

    def test_unsat_none(self):
        s = Solver()
        assert s.model(fand(lt_f(x, y), lt_f(y, x))) is None

    def test_with_functions(self):
        s = Solver()
        f = fand(eq_f(app("g", x, y), num(2)), ne_f(x, y), le_f(x, num(0)))
        model = s.model(f)
        assert model is not None
        assert evaluate_formula(f, *model)


# -- property: any model returned satisfies the formula ----------------------

_VARS = [x, y, z]


@st.composite
def formulas(draw, depth=2):
    def term():
        t = num(draw(st.integers(-4, 4)))
        for _ in range(draw(st.integers(0, 2))):
            v = draw(st.sampled_from(_VARS))
            t = t_add(t, t_scale(draw(st.integers(-2, 2)), v))
        return t

    def atom():
        kind = draw(st.sampled_from(["le", "lt", "eq", "ne", "fn"]))
        if kind == "fn":
            return eq_f(app("h", draw(st.sampled_from(_VARS))), term())
        a, b = term(), term()
        return {"le": le_f, "lt": lt_f, "eq": eq_f, "ne": ne_f}[kind](a, b)

    def build(d):
        if d <= 0:
            return atom()
        c = draw(st.integers(0, 3))
        if c == 0:
            return atom()
        if c == 1:
            return fnot(build(d - 1))
        if c == 2:
            return fand(build(d - 1), build(d - 1))
        return for_(build(d - 1), build(d - 1))

    return build(depth)


@given(formulas())
@settings(max_examples=120, deadline=None)
def test_models_satisfy_their_formulas(f):
    solver = Solver()
    verdict = solver.is_sat(f)
    model = solver.model(f)
    if model is not None:
        assert verdict != "unsat"
        assert evaluate_formula(f, *model)
    if verdict == "unsat":
        assert model is None
