"""Shared test configuration: hypothesis profiles.

Two named profiles, selected with ``HYPOTHESIS_PROFILE`` (default
``dev``):

* ``ci`` — derandomized (the failing example set is stable across runs,
  so a red CI job is reproducible locally from the printed seed) with an
  explicit generous deadline: shared CI runners are slow and jittery, and
  a flaky deadline failure tells us nothing about the code under test.
* ``dev`` — the local profile: random exploration on every run (new
  examples each time surface new bugs), no deadline so a debugger or a
  cold cache never trips it.
"""

import os

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass
else:
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=2000,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
