"""Tests for congruence closure and the LIA engine."""

from repro.smt.euf import CongruenceClosure
from repro.smt.lia import LinCon, lia_check, lia_implies_eq
from repro.smt import app, num, sym, t_add

x, y, z, w = sym("x"), sym("y"), sym("z"), sym("w")


class TestCongruenceClosure:
    def test_reflexive(self):
        cc = CongruenceClosure()
        assert cc.are_equal(x, x)

    def test_transitive(self):
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        cc.assert_equal(y, z)
        assert cc.are_equal(x, z)

    def test_congruence_basic(self):
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        assert cc.are_equal(app("f", x), app("f", y))

    def test_congruence_nested(self):
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        assert cc.are_equal(app("f", app("g", x)), app("f", app("g", y)))

    def test_congruence_multi_arg(self):
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        cc.assert_equal(z, w)
        assert cc.are_equal(app("f", x, z), app("f", y, w))

    def test_different_functions_not_merged(self):
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        assert not cc.are_equal(app("f", x), app("g", y))

    def test_curried_chain(self):
        # f(f(f(x))) = x and f(f(x)) = x imply f(x) = x (classic example).
        cc = CongruenceClosure()
        fx = app("f", x)
        ffx = app("f", fx)
        fffx = app("f", ffx)
        cc.assert_equal(fffx, x)
        cc.assert_equal(ffx, x)
        assert cc.are_equal(fx, x)

    def test_lin_congruence(self):
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        assert cc.are_equal(t_add(x, num(1)), t_add(y, num(1)))

    def test_lin_distinct_constants_not_merged(self):
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        assert not cc.are_equal(t_add(x, num(1)), t_add(y, num(2)))

    def test_constant_conflict_detection(self):
        cc = CongruenceClosure()
        cc.assert_equal(x, num(1))
        cc.assert_equal(x, num(2))
        assert cc.has_constant_conflict()

    def test_constant_of(self):
        cc = CongruenceClosure()
        cc.assert_equal(x, num(5))
        cc.assert_equal(y, x)
        assert cc.constant_of(y) == 5
        assert cc.constant_of(z) is None

    def test_merge_args_after_application_registered(self):
        cc = CongruenceClosure()
        fx = app("f", x)
        fy = app("f", y)
        cc.add_term(fx)
        cc.add_term(fy)
        assert not cc.are_equal(fx, fy)
        cc.assert_equal(x, y)
        assert cc.are_equal(fx, fy)


def con(coeffs, const):
    return LinCon.make(coeffs, const)


class TestLia:
    def test_empty_sat(self):
        assert lia_check([], []) == "sat"

    def test_simple_bounds_sat(self):
        # 0 <= x <= 10
        assert lia_check([], [con({"x": -1}, 0), con({"x": 1}, -10)]) == "sat"

    def test_contradictory_bounds(self):
        # x <= 0 and x >= 1
        assert lia_check([], [con({"x": 1}, 0), con({"x": -1}, 1)]) == "unsat"

    def test_transitive_chain_unsat(self):
        # x < y, y < z, z < x  (strict cycles are unsat)
        les = [
            con({"x": 1, "y": -1}, 1),
            con({"y": 1, "z": -1}, 1),
            con({"z": 1, "x": -1}, 1),
        ]
        assert lia_check([], les) == "unsat"

    def test_equality_gcd_unsat(self):
        # 2x = 1
        assert lia_check([con({"x": 2}, -1)], []) == "unsat"

    def test_equality_substitution(self):
        # x = y + 1, x <= 0, y >= 0
        eqs = [con({"x": 1, "y": -1}, -1)]
        les = [con({"x": 1}, 0), con({"y": -1}, 0)]
        assert lia_check(eqs, les) == "unsat"

    def test_integer_tightening(self):
        # 2x >= 1 and 2x <= 1: rationally sat (x=1/2) but tightening to
        # x >= 1 and x <= 0 refutes it over the integers.
        les = [con({"x": -2}, 1), con({"x": 2}, -1)]
        assert lia_check([], les) == "unsat"

    def test_diseq_forces_split_unsat(self):
        # 0 <= x <= 1, x != 0, x != 1
        les = [con({"x": -1}, 0), con({"x": 1}, -1)]
        dis = [con({"x": 1}, 0), con({"x": 1}, -1)]
        assert lia_check([], les, dis) == "unsat"

    def test_diseq_sat(self):
        # 0 <= x <= 2, x != 1 is satisfiable
        les = [con({"x": -1}, 0), con({"x": 1}, -2)]
        dis = [con({"x": 1}, -1)]
        assert lia_check([], les, dis) == "sat"

    def test_constant_diseq(self):
        assert lia_check([], [], [con({}, 0)]) == "unsat"
        assert lia_check([], [], [con({}, 5)]) == "sat"

    def test_implied_equality(self):
        # x <= y and y <= x imply x = y
        les = [con({"x": 1, "y": -1}, 0), con({"y": 1, "x": -1}, 0)]
        assert lia_implies_eq([], les, [], "x", "y")

    def test_not_implied_equality(self):
        les = [con({"x": 1, "y": -1}, 0)]  # x <= y only
        assert not lia_implies_eq([], les, [], "x", "y")

    def test_three_var_fm(self):
        # x + y <= 3, y >= 2, x >= 2 -> unsat
        les = [con({"x": 1, "y": 1}, -3), con({"y": -1}, 2), con({"x": -1}, 2)]
        assert lia_check([], les) == "unsat"

    def test_eq_chain_propagates(self):
        # a = b, b = c, a >= 5, c <= 4
        eqs = [con({"a": 1, "b": -1}, 0), con({"b": 1, "c": -1}, 0)]
        les = [con({"a": -1}, 5), con({"c": 1}, -4)]
        assert lia_check(eqs, les) == "unsat"
