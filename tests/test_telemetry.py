"""Unit tests for the telemetry subsystem (spans, metrics, sinks, no-op)."""

import json
from pathlib import Path

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    InMemorySink,
    JsonlFileSink,
    MetricsRegistry,
    NULL_TELEMETRY,
    PrometheusTextSink,
    Telemetry,
    TelemetrySink,
    Tracer,
    prometheus_text,
)

GOLDEN = Path(__file__).parent / "data" / "telemetry_golden.prom"


class TestSpans:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", task="t") as outer:
            with tracer.span("inner") as inner:
                inner.set("k", 1)
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner"]
        assert inner.attributes == {"k": 1}
        assert outer.attributes == {"task": "t"}

    def test_times_recorded(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            sum(range(10_000))
        assert span.wall_seconds > 0
        assert span.cpu_seconds >= 0
        d = span.to_dict()
        assert d["name"] == "timed"
        assert d["wall_s"] >= 0

    def test_error_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.roots[0].attributes["error"] == "ValueError"

    def test_to_dicts_children(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        (root,) = tracer.to_dicts()
        assert [c["name"] for c in root["children"]] == ["b"]


class TestMetrics:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2)
        reg.counter("hits", shard="a").inc(5)
        assert reg.counter("hits").value == 3
        assert reg.counter("hits", shard="a").value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("hits").inc(-1)

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(4)
        g.inc(-1)
        assert g.value == 3

    def test_histogram_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.7, 5.0):
            h.observe(v)
        snap = h.snapshot()
        # Cumulative: le=0.1 -> 1, le=1.0 -> 3, +Inf -> 4.
        assert snap["buckets"] == [[0.1, 1], [1.0, 3], ["+Inf", 4]]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.25)

    def test_histogram_boundary_value_goes_in_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(1.0)  # le is inclusive
        assert h.snapshot()["buckets"][0] == [1.0, 1]

    def test_default_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert tuple(h.boundaries) == DEFAULT_LATENCY_BUCKETS

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.counter("only_b").inc(7)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.counter("only_b").value == 7
        assert a.gauge("g").value == 9  # gauges overwrite
        assert a.histogram("h", buckets=(1.0,)).snapshot()["count"] == 2

    def test_merge_counts_bridge(self):
        reg = MetricsRegistry()
        reg.merge_counts({"checks": 3, "cache_hits": 1}, prefix="smt_")
        assert reg.counter("smt_checks").value == 3
        assert reg.counter("smt_cache_hits").value == 1

    def test_snapshot_sorted_and_grouped(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert [c["name"] for c in snap["counters"]] == ["a", "b"]
        assert set(snap) == {"counters", "gauges", "histograms"}


class TestPrometheus:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("requests_total", method="get").inc(3)
        reg.counter("requests_total", method="post").inc(1)
        reg.gauge("queue_depth").set(2)
        h = reg.histogram("latency_seconds", buckets=(0.1, 0.5))
        for v in (0.05, 0.3, 0.9):
            h.observe(v)
        return reg

    def test_golden_file(self):
        text = prometheus_text(self._registry().snapshot())
        assert text == GOLDEN.read_text()

    def test_every_family_has_help_and_type(self):
        text = prometheus_text(self._registry().snapshot())
        for name, kind in (
            ("requests_total", "counter"),
            ("queue_depth", "gauge"),
            ("latency_seconds", "histogram"),
        ):
            assert f"# HELP {name} " in text
            assert f"# TYPE {name} {kind}" in text
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE "):
                assert lines[i - 1].startswith("# HELP "), line

    def test_known_family_gets_curated_help(self):
        reg = MetricsRegistry()
        reg.counter("smt_checks").inc()
        text = prometheus_text(reg.snapshot())
        assert "# HELP smt_checks SMT validity checks issued.\n" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c').inc()
        text = prometheus_text(reg.snapshot())
        assert 'path="a\\"b\\\\c"' in text

    def test_label_newline_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", path="a\nb").inc()
        text = prometheus_text(reg.snapshot())
        assert 'path="a\\nb"' in text
        assert "\n\n" not in text  # no literal newline leaked into a label

    def test_help_escaping_differs_from_label_escaping(self):
        # HELP text escapes backslash and newline but NOT double quotes.
        from repro.telemetry.sinks import HELP_TEXTS

        HELP_TEXTS['weird_metric'] = 'say "hi"\nback\\slash'
        try:
            reg = MetricsRegistry()
            reg.counter("weird_metric").inc()
            text = prometheus_text(reg.snapshot())
            assert '# HELP weird_metric say "hi"\\nback\\\\slash\n' in text
        finally:
            del HELP_TEXTS["weird_metric"]


class TestSinks:
    def test_in_memory(self):
        sink = InMemorySink()
        t = Telemetry.capture()
        t.counter("c").inc()
        t.export(sink)
        assert len(sink.exports) == 1
        assert sink.exports[0]["metrics"]["counters"][0]["name"] == "c"
        assert isinstance(sink, TelemetrySink)

    def test_jsonl_appends(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlFileSink(path)
        t = Telemetry.capture()
        t.counter("c").inc()
        t.export(sink)
        t.export(sink)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["metrics"]["counters"][0]["value"] == 1

    def test_prometheus_sink_overwrites(self, tmp_path):
        path = tmp_path / "m.prom"
        sink = PrometheusTextSink(path)
        t = Telemetry.capture()
        t.counter("c").inc()
        t.export(sink)
        t.export(sink)
        assert path.read_text().count("# TYPE c counter") == 1


class TestNoop:
    def test_null_telemetry_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert Telemetry.disabled() is NULL_TELEMETRY

    def test_null_span_is_context_manager(self):
        with NULL_TELEMETRY.span("x", a=1) as span:
            span.set("k", 2)  # all no-ops

    def test_null_metrics_accept_everything(self):
        NULL_TELEMETRY.counter("c", l="v").inc(5)
        NULL_TELEMETRY.gauge("g").set(1)
        NULL_TELEMETRY.histogram("h").observe(0.5)
        snap = NULL_TELEMETRY.snapshot()
        assert snap["metrics"] == {"counters": [], "gauges": [], "histograms": []}

    def test_child_of_disabled_is_self(self):
        assert NULL_TELEMETRY.child() is NULL_TELEMETRY
        NULL_TELEMETRY.absorb(NULL_TELEMETRY)  # must not raise


class TestChildAbsorb:
    def test_child_metrics_fold_back(self):
        parent = Telemetry.capture()
        parent.counter("c").inc(1)
        child = parent.child()
        child.counter("c").inc(2)
        assert parent.counter("c").value == 1  # isolated until absorbed
        parent.absorb(child)
        assert parent.counter("c").value == 3
        assert child.counter("c").value == 2

    def test_child_shares_tracer(self):
        parent = Telemetry.capture(trace=True)
        child = parent.child()
        with child.span("from-child"):
            pass
        assert [s.name for s in parent.tracer.roots] == ["from-child"]
