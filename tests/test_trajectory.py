"""The benchmark-trajectory regression gate (benchmarks/trajectory.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "trajectory", Path(__file__).resolve().parent.parent / "benchmarks" / "trajectory.py"
)
trajectory = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(trajectory)


def _row(scale="small", **metrics):
    return {
        "schema_version": trajectory.SCHEMA_VERSION,
        "timestamp": "2026-01-01T00:00:00+00:00",
        "git_sha": "abc1234",
        "scale": scale,
        "metrics": metrics,
    }


class TestGate:
    def test_first_row_is_vacuously_green(self):
        assert trajectory.gate(None, _row(weather_udf_speedup=1.5)) == []

    def test_identical_metrics_pass(self):
        base = _row(weather_udf_speedup=1.5, weather_smt_checks=100)
        assert trajectory.gate(base, _row(weather_udf_speedup=1.5, weather_smt_checks=100)) == []

    def test_higher_better_regression(self):
        base = _row(weather_udf_speedup=2.0)
        # 10% tight band: 1.79 < 2.0 * 0.9
        bad = trajectory.gate(base, _row(weather_udf_speedup=1.79))
        assert len(bad) == 1 and "weather_udf_speedup" in bad[0]
        # 1.81 is inside the band
        assert trajectory.gate(base, _row(weather_udf_speedup=1.81)) == []

    def test_lower_better_regression(self):
        base = _row(weather_smt_checks=100)
        bad = trajectory.gate(base, _row(weather_smt_checks=111))
        assert len(bad) == 1 and "weather_smt_checks" in bad[0]
        assert trajectory.gate(base, _row(weather_smt_checks=109)) == []

    def test_wall_clock_band_is_loose(self):
        base = _row(weather_run_seconds=1.0)
        # 40% slower wall time is inside the 50% band
        assert trajectory.gate(base, _row(weather_run_seconds=1.4)) == []
        bad = trajectory.gate(base, _row(weather_run_seconds=1.6))
        assert len(bad) == 1

    def test_tolerance_multiplier_widens_bands(self):
        base = _row(weather_smt_checks=100)
        assert trajectory.gate(base, _row(weather_smt_checks=115), tolerance=2.0) == []
        assert trajectory.gate(base, _row(weather_smt_checks=115), tolerance=1.0)

    def test_unknown_and_missing_metrics_are_skipped(self):
        base = _row(weather_smt_checks=100)
        new = _row(weather_smt_checks=100, brand_new_metric=1, weather_udf_speedup=9.9)
        assert trajectory.gate(base, new) == []

    def test_zero_baseline_is_skipped(self):
        base = _row(weather_smt_checks=0)
        assert trajectory.gate(base, _row(weather_smt_checks=50)) == []


class TestBaseline:
    def test_latest_matching_scale_wins(self):
        rows = [
            _row(scale="small", weather_smt_checks=1),
            _row(scale="full", weather_smt_checks=2),
            _row(scale="small", weather_smt_checks=3),
        ]
        assert trajectory.find_baseline(rows, "small")["metrics"]["weather_smt_checks"] == 3
        assert trajectory.find_baseline(rows, "full")["metrics"]["weather_smt_checks"] == 2

    def test_other_schema_versions_ignored(self):
        rows = [{"schema_version": 99, "scale": "small", "metrics": {}}]
        assert trajectory.find_baseline(rows, "small") is None
        assert trajectory.find_baseline([], "small") is None


class TestDedupe:
    def _sha_row(self, sha, scale="small", **metrics):
        row = _row(scale=scale, **metrics)
        row["git_sha"] = sha
        return row

    def test_latest_row_per_sha_and_scale_wins(self):
        rows = [
            self._sha_row("aaa", weather_smt_checks=1),
            self._sha_row("bbb", weather_smt_checks=2),
            self._sha_row("aaa", weather_smt_checks=3),
        ]
        deduped = trajectory.dedupe_rows(rows)
        assert [r["git_sha"] for r in deduped] == ["bbb", "aaa"]
        assert deduped[1]["metrics"]["weather_smt_checks"] == 3

    def test_scales_are_distinct(self):
        rows = [
            self._sha_row("aaa", scale="small"),
            self._sha_row("aaa", scale="full"),
        ]
        assert len(trajectory.dedupe_rows(rows)) == 2

    def test_unknown_sha_rows_are_kept(self):
        rows = [
            self._sha_row("unknown"),
            self._sha_row("unknown"),
            {"scale": "small", "metrics": {}},  # no sha at all
        ]
        assert trajectory.dedupe_rows(rows) == rows

    def test_order_preserved_and_unique_history_untouched(self):
        rows = [self._sha_row(sha) for sha in ("aaa", "bbb", "ccc")]
        assert trajectory.dedupe_rows(rows) == rows


class TestEndToEnd:
    def test_first_append_then_gate(self, tmp_path):
        out = tmp_path / "BENCH_trajectory.json"
        assert trajectory.main(["--output", str(out)]) == 0
        rows = json.loads(out.read_text())
        assert len(rows) == 1
        row = rows[0]
        assert row["schema_version"] == trajectory.SCHEMA_VERSION
        assert row["scale"] == "small"
        assert set(trajectory.METRIC_SPECS) == set(row["metrics"])
        assert row["metrics"]["weather_udf_speedup"] > 1.0

        # Second run gates against the first and stays green (deterministic
        # metrics are identical; wall clock is within the loose band).  Both
        # rows carry the same git sha, so dedupe keeps only the fresh one.
        assert trajectory.main(["--output", str(out), "--tolerance", "10"]) == 0
        rows_after = json.loads(out.read_text())
        assert len(rows_after) == 1
        assert rows_after[0]["timestamp"] >= row["timestamp"]

    def test_regression_exits_nonzero(self, tmp_path):
        out = tmp_path / "BENCH_trajectory.json"
        doctored = _row(scale="small", weather_smt_checks=1)
        out.write_text(json.dumps([doctored]))
        # The real workload does far more than 1 SMT check -> gate fires.
        assert trajectory.main(["--output", str(out), "--dry-run"]) == 1
        # --dry-run must not have appended the failing row.
        assert len(json.loads(out.read_text())) == 1
