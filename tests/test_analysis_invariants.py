"""Tests for loop-invariant inference (guess-and-check)."""

import pytest

from repro.analysis import SpEngine, loop_invariant, stable_conjuncts
from repro.lang import (
    FunctionTable,
    LibraryFunction,
    add,
    arg,
    assign,
    block,
    call,
    ge,
    gt,
    le,
    lt,
    sub,
    var,
)
from repro.smt import Num, Solver, TRUE_F, eq_f, fand, le_f, lt_f
from repro.smt.interface import arg_sym, var_sym
from repro.smt.terms import t_sub


@pytest.fixture
def ft():
    return FunctionTable([LibraryFunction("f", lambda x: x * 7 % 13, cost=30)])


@pytest.fixture
def engine(ft):
    return SpEngine(ft)


@pytest.fixture
def solver():
    return Solver()


from repro.lang import lift


def entry_context(engine, assigns):
    psi = TRUE_F
    for name, e in assigns:
        psi = engine.assign(psi, name, lift(e))
    return psi


class TestStableConjuncts:
    def test_keeps_untouched_facts(self):
        psi = fand(eq_f(var_sym("a"), Num(1)), eq_f(var_sym("b"), Num(2)))
        assert stable_conjuncts(psi, {"b"}) == eq_f(var_sym("a"), Num(1))

    def test_drops_everything_when_all_killed(self):
        psi = fand(eq_f(var_sym("a"), Num(1)))
        assert stable_conjuncts(psi, {"a"}) == TRUE_F

    def test_non_conjunction_input(self):
        psi = eq_f(var_sym("a"), Num(1))
        assert stable_conjuncts(psi, set()) == psi


class TestExample6:
    """The paper's Example 6: i := a; j := a - 1; parallel descent."""

    def test_finds_offset_invariant(self, engine, solver):
        psi = entry_context(
            engine,
            [("i", arg("alpha")), ("x", 0), ("j", sub(arg("alpha"), 1)), ("y", arg("alpha"))],
        )
        body = block(
            assign("i", sub(var("i"), 1)),
            assign("t1", call("f", var("i"))),
            assign("x", add(var("x"), var("t1"))),
            assign("t2", call("f", var("j"))),
            assign("y", add(var("y"), var("t2"))),
            assign("j", sub(var("j"), 1)),
        )
        conds = [gt(var("i"), 0), ge(var("j"), 0)]
        inv = loop_invariant(engine, solver, psi, conds, body)
        assert solver.entails(inv, eq_f(t_sub(var_sym("j"), var_sym("i")), Num(-1)))

    def test_loop2_exit_condition(self, engine, solver):
        """j = i - 1 proves both loops stop together."""

        psi = entry_context(engine, [("i", arg("alpha")), ("j", sub(arg("alpha"), 1))])
        body = block(
            assign("i", sub(var("i"), 1)),
            assign("j", sub(var("j"), 1)),
        )
        conds = [gt(var("i"), 0), ge(var("j"), 0)]
        inv = loop_invariant(engine, solver, psi, conds, body)
        from repro.smt import fnot, fiff

        e1 = lt_f(Num(0), var_sym("i"))
        e2 = le_f(Num(0), var_sym("j"))
        assert solver.entails(inv, fiff(e1, e2))


class TestParallelAccumulators:
    def test_equal_sums_invariant(self, engine, solver):
        psi = entry_context(
            engine, [("s1", 0), ("m1", 1), ("s2", 0), ("m2", 1)]
        )
        body = block(
            assign("s1", add(var("s1"), call("f", var("m1")))),
            assign("m1", add(var("m1"), 1)),
            assign("s2", add(var("s2"), call("f", var("m2")))),
            assign("m2", add(var("m2"), 1)),
        )
        conds = [le(var("m1"), 12), le(var("m2"), 12)]
        inv = loop_invariant(engine, solver, psi, conds, body)
        assert solver.entails(inv, eq_f(t_sub(var_sym("s1"), var_sym("s2")), Num(0)))
        assert solver.entails(inv, eq_f(t_sub(var_sym("m1"), var_sym("m2")), Num(0)))


class TestNoFalseInvariants:
    def test_unequal_counters_not_claimed(self, engine, solver):
        """i climbs by 1, j by 2 — no constant difference is invariant."""

        psi = entry_context(engine, [("i", 0), ("j", 0)])
        body = block(
            assign("i", add(var("i"), 1)),
            assign("j", add(var("j"), 2)),
        )
        conds = [lt(var("i"), 10), lt(var("j"), 10)]
        inv = loop_invariant(engine, solver, psi, conds, body)
        for c in range(-3, 4):
            cand = eq_f(t_sub(var_sym("i"), var_sym("j")), Num(c))
            assert not solver.entails(inv, cand)

    def test_invariant_is_inductive_not_just_initial(self, engine, solver):
        """x = y holds at entry but is broken by the body — must not be kept."""

        psi = entry_context(engine, [("x", 5), ("y", 5)])
        body = block(assign("x", add(var("x"), 1)))
        conds = [lt(var("x"), 10), lt(var("y"), 10)]
        inv = loop_invariant(engine, solver, psi, conds, body)
        cand = eq_f(t_sub(var_sym("x"), var_sym("y")), Num(0))
        assert not solver.entails(inv, cand)

    def test_stable_facts_survive(self, engine, solver):
        psi = entry_context(engine, [("k", 42), ("i", 0)])
        body = block(assign("i", add(var("i"), 1)))
        conds = [lt(var("i"), 5)]
        inv = loop_invariant(engine, solver, psi, conds, body)
        assert solver.entails(inv, eq_f(var_sym("k"), Num(42)))
