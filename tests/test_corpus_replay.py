"""Replay every regression case in ``tests/corpus/`` through the battery.

Each file pins one minimized bug class: either the pipeline must handle it
cleanly (``expect: pass``) or the oracle battery must still *catch* it
(``expect: discrepancy`` — these cases guard the harness's own detection
power, e.g. that a deliberate miscompile cannot slip through unnoticed).
"""

from pathlib import Path

import pytest

from repro.testing import read_case, replay_case
from repro.testing.corpus import corpus_files

CORPUS_DIR = Path(__file__).parent / "corpus"

FILES = corpus_files(CORPUS_DIR)


def test_corpus_is_seeded():
    assert len(FILES) >= 10, "the regression corpus must hold at least 10 cases"


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_corpus_case_replays(path):
    case = read_case(path)
    # replay_case raises AssertionError when the outcome contradicts the
    # case's expectation; the return value is the battery result.
    result = replay_case(case)
    if case.expect == "pass":
        assert result.ok
    else:
        assert not result.ok


def test_corpus_round_trips(tmp_path):
    """write_case(read_case(f)) reproduces every program structurally."""

    from repro.testing import write_case

    for path in FILES:
        case = read_case(path)
        copy = write_case(tmp_path / path.name, case)
        again = read_case(copy)
        assert again.programs == case.programs, path.name
        assert again.fault == case.fault and again.expect == case.expect
