"""The incremental re-consolidation equivalence suite.

The service's whole value rests on two claims, both tested here:

* **equivalence** — a plan maintained by incremental add/remove patches
  produces bucket-for-bucket identical notifications to (a) a full
  re-consolidation of the same membership and (b) the un-consolidated
  ``whereMany`` ground truth, across random registration orders drawn
  from the fuzz generator;
* **economy** — a single add/remove against a 50-query registry performs
  *strictly fewer* pair merges than the full re-consolidation would,
  asserted from provenance derivation records alone (one
  :class:`~repro.provenance.DerivationTree` per merge), with the merged
  program's cost never worse than the sequential composition (Theorem 1,
  which the paper guarantees only against the *sequential* baseline).

Failure handling is load-bearing too: a fault injected at the batch
driver's ``consolidate.pair`` seam must surface as :class:`PatchError`
(the registry then falls back to a recorded rebuild), never as a silent
sequential degradation.  And the registry must stay coherent under
concurrent register/unregister callers.
"""

import threading

import pytest

from repro.consolidation import divide_conquer
from repro.consolidation.incremental import (
    PatchError,
    add_query,
    rebuild,
    remove_query,
)
from repro.naiad import from_collection, run_where_many
from repro.queries import DOMAIN_QUERIES
from repro.service import QueryRegistry
from repro.testing.faults import fault_hook
from repro.testing.generator import case_inputs, generate_case, schema_dataset


@pytest.fixture(scope="module")
def weather():
    return schema_dataset("weather")


def weather_batch(dataset, n, family="Q1", seed=3):
    return DOMAIN_QUERIES["weather"].make_batch(dataset, family, n=n, seed=seed)


def buckets_of(result):
    """Notification buckets normalised for comparison (empty pids drop)."""

    return {pid: rows for pid, rows in result.buckets.items() if rows}


def run_tree(tree, pids, functions, rows):
    """Execute an already-consolidated merge tree (no re-consolidation)."""

    query = from_collection(rows).where_consolidated(
        tree.program, list(pids), functions
    )
    return query.run()


# ---------------------------------------------------------------------------
# equivalence across maintenance strategies


def test_incremental_adds_match_full_and_sequential(weather):
    programs = weather_batch(weather, n=6)
    rows = weather.rows[:60]

    tree = None
    for program in programs:
        tree = add_query(tree, program, weather.functions).tree
    full, _ = rebuild(programs, weather.functions)
    pids = [p.pid for p in programs]

    incremental = run_tree(tree, pids, weather.functions, rows)
    rebuilt = run_tree(full, pids, weather.functions, rows)
    ground_truth = run_where_many(rows, programs, weather.functions)

    assert buckets_of(incremental) == buckets_of(ground_truth)
    assert buckets_of(rebuilt) == buckets_of(ground_truth)
    # Theorem 1: the incrementally-maintained plan's UDF cost is never
    # worse than the sequential (whereMany) composition's.
    assert incremental.metrics.udf_cost <= ground_truth.metrics.udf_cost


def test_incremental_remove_matches_full(weather):
    programs = weather_batch(weather, n=7, family="Q2")
    rows = weather.rows[:60]
    tree, _ = rebuild(programs, weather.functions)

    removed = programs[3]
    remaining = [p for p in programs if p.pid != removed.pid]
    patched = remove_query(tree, removed.pid, weather.functions)
    full, _ = rebuild(remaining, weather.functions)
    pids = [p.pid for p in remaining]

    assert sorted(patched.tree.leaf_pids()) == sorted(pids)
    assert buckets_of(run_tree(patched.tree, pids, weather.functions, rows)) == (
        buckets_of(run_tree(full, pids, weather.functions, rows))
    )
    assert buckets_of(run_tree(patched.tree, pids, weather.functions, rows)) == (
        buckets_of(run_where_many(rows, remaining, weather.functions))
    )


@pytest.mark.parametrize("schema,seed", [("weather", 11), ("stock", 23), ("news", 5)])
def test_random_registration_orders_equivalent(schema, seed):
    """Fuzz-generated batches, registered in generator order, stay sound.

    The generator is free to emit programs the linter (rightly) rejects —
    admission is part of the surface under test, so rejected programs are
    simply skipped and equivalence is checked over the admitted subset.
    """

    from repro.service import AdmissionError

    programs = generate_case(seed, schema, size=2, n_programs=6)
    dataset = schema_dataset(schema)
    rows = [binding["row"] for binding in case_inputs(schema, limit=6)]

    registry = QueryRegistry(dataset.functions)
    admitted = []
    for program in programs:
        try:
            registry.register(program)
        except AdmissionError:
            continue
        admitted.append(program)
    assert len(admitted) >= 2, "seed produced too few admissible programs"

    ground_truth = run_where_many(rows, admitted, dataset.functions)
    assert buckets_of(registry.run(rows)) == buckets_of(ground_truth)

    # Remove one mid-membership query and re-check.
    registry.unregister(admitted[1].pid)
    remaining = [p for p in admitted if p.pid != admitted[1].pid]
    assert buckets_of(registry.run(rows)) == buckets_of(
        run_where_many(rows, remaining, dataset.functions)
    )


# ---------------------------------------------------------------------------
# the acceptance bar: strictly fewer merges than full, from provenance


@pytest.mark.slow
def test_single_patch_beats_full_reconsolidation_on_50_queries(weather):
    programs = weather_batch(weather, n=50, family="Mix", seed=7)
    tree, full_report = rebuild(programs, weather.functions)
    # One provenance derivation per pair merge is the counting instrument.
    assert len(full_report.derivations) == full_report.pair_consolidations == 49

    extra = weather_batch(weather, n=51, family="Q1", seed=7)[50]
    added = add_query(tree, extra, weather.functions)
    assert len(added.derivations) == added.pair_merges
    assert len(added.derivations) < len(full_report.derivations)
    assert added.pair_merges == 1

    removed = remove_query(added.tree, programs[17].pid, weather.functions)
    assert len(removed.derivations) == removed.pair_merges
    assert len(removed.derivations) < len(full_report.derivations)
    # Removal re-merges only the leaf's root path: ~log2(n), not n-1.
    assert removed.pair_merges <= added.tree.depth()

    # The patched plans notify identically to ground truth.
    rows = weather.rows[:40]
    with_extra = programs + [extra]
    assert buckets_of(
        run_tree(added.tree, [p.pid for p in with_extra], weather.functions, rows)
    ) == buckets_of(run_where_many(rows, with_extra, weather.functions))
    after_removal = [p for p in with_extra if p.pid != programs[17].pid]
    patched_run = run_tree(
        removed.tree, [p.pid for p in after_removal], weather.functions, rows
    )
    sequential_run = run_where_many(rows, after_removal, weather.functions)
    assert buckets_of(patched_run) == buckets_of(sequential_run)
    # Theorem 1 cost bound for the patched plan.
    assert patched_run.metrics.udf_cost <= sequential_run.metrics.udf_cost


# ---------------------------------------------------------------------------
# failure: faults surface as PatchError, the registry records the fallback


def test_patch_fault_raises_patch_error(weather):
    programs = weather_batch(weather, n=3)
    tree, _ = rebuild(programs, weather.functions)
    extra = weather_batch(weather, n=4)[3]

    def explode(site, payload):
        if site == "consolidate.pair":
            raise RuntimeError("injected pair fault")

    with fault_hook(divide_conquer, explode):
        with pytest.raises(PatchError, match="injected pair fault"):
            add_query(tree, extra, weather.functions)


def test_registry_falls_back_to_recorded_rebuild_on_fault(weather):
    programs = weather_batch(weather, n=4)
    registry = QueryRegistry(weather.functions)
    for program in programs[:3]:
        registry.register(program)

    calls = {"n": 0}

    def explode_once(site, payload):
        # Fail only the *patch* merge (the first call); let the fallback
        # rebuild's merges through.
        if site == "consolidate.pair":
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected patch fault")

    with fault_hook(divide_conquer, explode_once):
        registry.register(programs[3])

    assert len(registry) == 4
    assert registry.stats["patch_fallbacks"] == 1
    assert registry.stats["full_rebuilds"] == 1
    assert registry.last_patch.fallback is not None
    assert "injected patch fault" in registry.last_patch.fallback
    # The fallback plan is complete and sound.
    rows = weather.rows[:40]
    assert buckets_of(registry.run(rows)) == buckets_of(
        run_where_many(rows, programs, weather.functions)
    )


def test_remove_unknown_leaf_raises(weather):
    tree, _ = rebuild(weather_batch(weather, n=3), weather.functions)
    with pytest.raises(ValueError, match="not a leaf"):
        remove_query(tree, "ghost", weather.functions)


# ---------------------------------------------------------------------------
# concurrency: the registry serialises mutations, state stays coherent


def test_concurrent_register_unregister_stress(weather):
    programs = weather_batch(weather, n=12, family="Q2", seed=9)
    registry = QueryRegistry(weather.functions)
    errors: list[BaseException] = []
    barrier = threading.Barrier(4)

    def churn(worker: int) -> None:
        try:
            barrier.wait()
            for program in programs[worker * 3 : worker * 3 + 3]:
                registry.register(program)
            # Each worker removes one of its own registrations.
            registry.unregister(programs[worker * 3].pid)
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=churn, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert len(registry) == 8
    survivors = sorted(registry.pids())
    assert sorted(registry.tree.leaf_pids()) == survivors
    rows = weather.rows[:40]
    remaining = [p for p in programs if p.pid in set(survivors)]
    assert buckets_of(registry.run(rows)) == buckets_of(
        run_where_many(rows, remaining, weather.functions)
    )
