"""Tests for notification-latency tracking and priority-ordered consolidation
(the Section 8 extension; see EXPERIMENTS.md)."""

import pytest

pytestmark = pytest.mark.slow

from repro.consolidation import check_soundness, consolidate_all
from repro.datasets import generate_stocks
from repro.experiments import run_latency_experiment
from repro.lang import (
    FunctionTable,
    Interpreter,
    LibraryFunction,
    arg,
    assign,
    call,
    ite_notify,
    lt,
    notify,
    program,
    run_sequentially,
    var,
)
from repro.queries import DOMAIN_QUERIES

FT = FunctionTable([LibraryFunction("val", lambda r: (r * 13) % 50, cost=15)])


def filt(pid, bound):
    return program(
        pid,
        ("row",),
        assign("x", call("val", arg("row"))),
        ite_notify(pid, lt(var("x"), bound)),
    )


class TestLatencyTracking:
    def test_single_notify_latency_equals_cost(self):
        p = program("q", ("row",), notify("q", True))
        r = Interpreter(FT).run(p, {"row": 1})
        assert r.notification_costs["q"] == r.cost

    def test_latency_monotone_in_program_position(self):
        p = program(
            "ab",
            ("row",),
            assign("x", call("val", arg("row"))),
            notify("a", lt(var("x"), 10)),
            assign("y", call("val", arg("row"))),
            notify("b", lt(var("y"), 20)),
        )
        r = Interpreter(FT).run(p, {"row": 1})
        assert r.notification_costs["a"] < r.notification_costs["b"]
        assert r.notification_costs["b"] == r.cost

    def test_latency_never_exceeds_total_cost(self):
        p = filt("q", 25)
        for row in range(10):
            r = Interpreter(FT).run(p, {"row": row})
            assert 0 < r.notification_costs["q"] <= r.cost

    def test_sequential_latencies_accumulate(self):
        programs = [filt(f"q{i}", 10 * i + 5) for i in range(4)]
        r = run_sequentially(programs, {"row": 3}, FT)
        latencies = [r.notification_costs[f"q{i}"] for i in range(4)]
        assert latencies == sorted(latencies)
        # Each later query waits for all earlier programs.
        single = Interpreter(FT).run(programs[0], {"row": 3}).cost
        assert latencies[1] > single

    def test_latency_accumulates_through_loops(self):
        from repro.lang import add, block, while_, le

        p = program(
            "q",
            ("row",),
            assign("i", 0),
            while_(le(var("i"), 3), assign("i", add(var("i"), 1))),
            notify("q", True),
        )
        r = Interpreter(FT).run(p, {"row": 0})
        assert r.notification_costs["q"] == r.cost


class TestPriorityOrder:
    def test_priority_program_broadcasts_first(self):
        programs = [filt(f"q{i}", 10 * i + 5) for i in range(6)]
        report = consolidate_all(programs, FT, order="priority", priority=["q4"])
        r = Interpreter(FT).run(report.program, {"row": 2})
        others = [v for k, v in r.notification_costs.items() if k != "q4"]
        assert r.notification_costs["q4"] <= min(others)

    def test_priority_order_still_sound(self):
        programs = [filt(f"q{i}", 10 * i + 5) for i in range(5)]
        report = consolidate_all(programs, FT, order="priority", priority=["q3", "q1"])
        sound = check_soundness(programs, report.program, FT, [{"row": r} for r in range(20)])
        assert sound.ok, sound.violations

    def test_priority_beats_default_for_chosen_query(self):
        ds = generate_stocks(companies=20, total_daily_rows=2500)
        programs = DOMAIN_QUERIES["stock"].make_batch(ds, "Q1", n=8, seed=3)
        rep = run_latency_experiment(ds, programs, priority=("q6",), row_limit=15)
        assert rep.prioritized["q6"] <= rep.consolidated["q6"]
        assert rep.consolidated["q6"] < rep.sequential["q6"]

    def test_consolidation_reduces_mean_latency(self):
        ds = generate_stocks(companies=20, total_daily_rows=2500)
        programs = DOMAIN_QUERIES["stock"].make_batch(ds, "Q1", n=8, seed=3)
        rep = run_latency_experiment(ds, programs, priority=("q0",), row_limit=15)
        assert rep.mean(rep.consolidated) < rep.mean(rep.sequential)

    def test_summary_has_priority_rows(self):
        ds = generate_stocks(companies=20, total_daily_rows=2500)
        programs = DOMAIN_QUERIES["stock"].make_batch(ds, "Q1", n=4, seed=3)
        rep = run_latency_experiment(ds, programs, priority=("q1",), row_limit=5)
        summary = rep.summary()
        assert "q1_prioritized" in summary and "sequential_mean" in summary
