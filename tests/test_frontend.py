"""Tests for the Python-AST frontend."""

import pytest

from repro.frontend import TranslationError, translate_source, translate_udf
from repro.lang import (
    FunctionTable,
    LibraryFunction,
    STR,
    program_to_str,
    run_program,
)


FT = FunctionTable(
    [
        LibraryFunction("price", lambda r: (r * 37) % 400, cost=20),
        LibraryFunction("stops", lambda r: r % 4, cost=20),
        LibraryFunction("name", lambda r: ["ua", "wn", "dl"][r % 3], cost=20, result_sort=STR),
        LibraryFunction("get_temp", lambda r, m: (r * 3 + m * 7) % 25 - 5, cost=30),
    ]
)


def run(src, args, pid="q", consts=None):
    p = translate_source(src, pid, consts, FT)
    return p, run_program(p, args, FT)


class TestBasics:
    def test_simple_filter(self):
        p, r = run("def udf(row):\n    return price(row) < 100", {"row": 3})
        assert r.notifications == {"q": ((3 * 37) % 400) < 100}

    def test_attribute_sugar(self):
        p, r = run("def udf(row):\n    return row.price < 100", {"row": 3})
        assert "price(@row)" in program_to_str(p)

    def test_method_sugar(self):
        p, r = run("def udf(row):\n    return row.get_temp(3) > 0", {"row": 5})
        assert "get_temp(@row, 3)" in program_to_str(p)

    def test_parameters_become_constants(self):
        src = "def udf(row, bound):\n    return price(row) < bound"
        p = translate_source(src, "q", {"bound": 150}, FT)
        assert "150" in program_to_str(p)

    def test_default_values_used(self):
        src = "def udf(row, bound=200):\n    return price(row) < bound"
        p = translate_source(src, "q", None, FT)
        assert "200" in program_to_str(p)

    def test_explicit_const_overrides_default(self):
        src = "def udf(row, bound=200):\n    return price(row) < bound"
        p = translate_source(src, "q", {"bound": 10}, FT)
        text = program_to_str(p)
        assert "10" in text and "200" not in text

    def test_missing_parameter_binding_rejected(self):
        src = "def udf(row, bound):\n    return price(row) < bound"
        with pytest.raises(TranslationError):
            translate_source(src, "q", None, FT)

    def test_string_comparison(self):
        p, r = run('def udf(row):\n    return name(row) == "ua"', {"row": 0})
        assert r.notifications == {"q": True}


class TestControlFlow:
    def test_early_return(self):
        src = (
            "def udf(row):\n"
            "    if price(row) >= 200:\n"
            "        return False\n"
            "    return stops(row) == 0\n"
        )
        for row in range(10):
            p, r = run(src, {"row": row})
            expected = (row * 37) % 400 < 200 and row % 4 == 0
            assert r.notifications == {"q": expected}

    def test_if_elif_else(self):
        src = (
            "def udf(row):\n"
            "    p = price(row)\n"
            "    if p < 50:\n"
            "        return True\n"
            "    elif p < 100:\n"
            "        return stops(row) < 2\n"
            "    else:\n"
            "        return False\n"
        )
        for row in range(12):
            p, r = run(src, {"row": row})
            price = (row * 37) % 400
            expected = price < 50 or (price < 100 and row % 4 < 2)
            assert r.notifications == {"q": expected}

    def test_while_loop(self):
        src = (
            "def udf(row):\n"
            "    m = 1\n"
            "    total = 0\n"
            "    while m <= 12:\n"
            "        total = total + get_temp(row, m)\n"
            "        m += 1\n"
            "    return total > 0\n"
        )
        p, r = run(src, {"row": 4})
        expected = sum((4 * 3 + m * 7) % 25 - 5 for m in range(1, 13)) > 0
        assert r.notifications == {"q": expected}

    def test_comparison_chain(self):
        src = "def udf(row):\n    return 0 <= stops(row) < 2"
        for row in range(8):
            p, r = run(src, {"row": row})
            assert r.notifications == {"q": 0 <= row % 4 < 2}

    def test_boolean_operators(self):
        src = "def udf(row):\n    return not (price(row) > 300 or stops(row) == 3)"
        for row in range(8):
            p, r = run(src, {"row": row})
            expected = not ((row * 37) % 400 > 300 or row % 4 == 3)
            assert r.notifications == {"q": expected}

    def test_augmented_assignment(self):
        src = (
            "def udf(row):\n"
            "    x = stops(row)\n"
            "    x *= 3\n"
            "    x -= 1\n"
            "    return x > 4\n"
        )
        for row in range(8):
            p, r = run(src, {"row": row})
            assert r.notifications == {"q": (row % 4) * 3 - 1 > 4}


class TestRejections:
    def reject(self, src, consts=None):
        with pytest.raises(TranslationError):
            translate_source(src, "q", consts, FT)

    def test_unknown_function(self):
        self.reject("def udf(row):\n    return mystery(row) > 1")

    def test_for_loop(self):
        self.reject("def udf(row):\n    for i in range(3):\n        pass\n    return True")

    def test_return_inside_loop(self):
        self.reject(
            "def udf(row):\n"
            "    while True:\n"
            "        return False\n"
        )

    def test_missing_return_path(self):
        self.reject("def udf(row):\n    x = 1")

    def test_unreachable_code(self):
        self.reject("def udf(row):\n    return True\n    x = 1")

    def test_division_unsupported(self):
        self.reject("def udf(row):\n    return price(row) / 2 > 10")

    def test_assign_to_parameter(self):
        self.reject("def udf(row, k=1):\n    k = 2\n    return True")

    def test_unbound_name(self):
        self.reject("def udf(row):\n    return zzz > 1")

    def test_float_literal(self):
        self.reject("def udf(row):\n    return price(row) > 1.5")

    def test_two_functions(self):
        with pytest.raises(TranslationError):
            translate_source("def a(r):\n    return True\ndef b(r):\n    return True", "q")

    def test_lambda_has_no_source(self):
        with pytest.raises(TranslationError):
            translate_udf(eval("lambda r: True"), "q")


class TestConsolidationIntegration:
    def test_translated_udfs_consolidate(self):
        src1 = "def udf(row, bound=100):\n    return price(row) < bound"
        src2 = (
            "def udf(row, bound=250):\n"
            "    if price(row) >= bound:\n"
            "        return False\n"
            "    return stops(row) == 0\n"
        )
        from repro.consolidation import Consolidator, check_soundness

        p1 = translate_source(src1, "q1", None, FT)
        p2 = translate_source(src2, "q2", None, FT)
        merged = Consolidator(FT).consolidate(p1, p2)
        report = check_soundness([p1, p2], merged, FT, [{"row": i} for i in range(40)])
        assert report.ok, report.violations
