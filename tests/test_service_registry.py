"""The service core: fingerprints, admission, plan cache, event log.

Key claims under test:

* canonical fingerprints mod out local names and pids (alpha-equivalent
  queries share one), but not semantics or cost model;
* admission rejects with SARIF diagnostics identical in shape to
  ``repro lint --format sarif``;
* re-registering an alpha-renamed batch hits the plan cache — *zero* new
  pair merges, verified by provenance-backed counters;
* the event log replays to byte-identical plan fingerprints;
* a spindly tree (adds graft at the root) trips the rebalance policy and
  the registry performs a recorded full rebuild, never a silent one.
"""

import pytest

from repro.config import ExecutionConfig, ServiceConfig
from repro.datasets import generate_weather
from repro.lang.cost import CostModel
from repro.lang.parser import parse_program
from repro.lang.printer import program_to_str
from repro.queries import DOMAIN_QUERIES
from repro.service import (
    AdmissionError,
    DuplicateQueryError,
    QueryRegistry,
    RegistryError,
    UnknownQueryError,
    admit,
    canonicalize,
    fingerprint,
    plan_key,
)


@pytest.fixture(scope="module")
def weather():
    return generate_weather(cities=20)


def weather_batch(dataset, n=4, family="Q1", seed=3):
    return DOMAIN_QUERIES["weather"].make_batch(dataset, family, n=n, seed=seed)


# ---------------------------------------------------------------------------
# fingerprints


def test_fingerprint_ignores_local_names_and_pid():
    a = parse_program("program q1(row) { t := @row + 1; notify q1 (t > 10); }")
    b = parse_program("program zz(row) { speed := @row + 1; notify zz (speed > 10); }")
    assert fingerprint(a) == fingerprint(b)
    assert program_to_str(canonicalize(a)) == program_to_str(canonicalize(b))


def test_fingerprint_distinguishes_semantics():
    a = parse_program("program q1(row) { notify q1 (@row > 10); }")
    b = parse_program("program q1(row) { notify q1 (@row > 11); }")
    assert fingerprint(a) != fingerprint(b)


def test_fingerprint_depends_on_cost_model():
    a = parse_program("program q1(row) { notify q1 (@row > 10); }")
    assert fingerprint(a) != fingerprint(a, CostModel(cmp=99))


def test_plan_key_is_order_independent():
    fps = ["aa", "bb", "cc"]
    assert plan_key(fps) == plan_key(reversed(fps))
    assert plan_key(fps) != plan_key(fps[:2])


# ---------------------------------------------------------------------------
# admission


def test_admission_rejects_parse_error_with_sarif(weather):
    with pytest.raises(AdmissionError) as excinfo:
        admit("program broken(row) {", weather.functions)
    sarif = excinfo.value.diagnostics
    assert sarif["version"] == "2.1.0"
    results = sarif["runs"][0]["results"]
    assert any(r["ruleId"] == "parse-error" for r in results)


def test_admission_rejects_lint_error_with_sarif(weather):
    # `row` without @ is an unassigned local — the linter's use-before-def.
    with pytest.raises(AdmissionError) as excinfo:
        admit("program q(row) { notify q (row > 1); }", weather.functions)
    results = excinfo.value.diagnostics["runs"][0]["results"]
    assert any(r["ruleId"] == "use-before-def" for r in results)


def test_admission_accepts_python_source(weather):
    decision = admit(
        "def notify(row):\n    return monthly_avg_temp(row, 3) > 50\n",
        weather.functions,
        pid="py1",
    )
    assert decision.program.pid == "py1"


def test_admission_warning_policy(weather):
    # A dead store lints as a warning: admitted by default, rejected
    # under the strict policy.
    source = "program w(row) { t := @row + 1; notify w (@row > 2); }"
    decision = admit(source, weather.functions)
    assert decision.warnings
    with pytest.raises(AdmissionError):
        admit(source, weather.functions, admit_warnings=False)


# ---------------------------------------------------------------------------
# registry + plan cache


def test_register_patches_incrementally(weather):
    registry = QueryRegistry(weather.functions)
    for program in weather_batch(weather):
        registry.register(program)
    assert len(registry) == 4
    # After the second registration every add is exactly one pair merge.
    assert registry.last_patch.action == "add"
    assert registry.last_patch.pair_merges == 1
    assert registry.stats["full_rebuilds"] == 0
    assert sorted(registry.tree.leaf_pids()) == sorted(registry.pids())


def test_duplicate_pid_rejected(weather):
    registry = QueryRegistry(weather.functions)
    program = weather_batch(weather, n=1)[0]
    registry.register(program)
    with pytest.raises(DuplicateQueryError):
        registry.register(program)
    assert len(registry) == 1


def test_mismatched_params_rejected(weather):
    registry = QueryRegistry(weather.functions)
    registry.register("program a(row) { notify a (@row > 1); }")
    with pytest.raises(RegistryError, match="consolidates over"):
        registry.register("program b(x, y) { notify b (@x > @y); }")


def test_unregister_unknown_pid(weather):
    registry = QueryRegistry(weather.functions)
    with pytest.raises(UnknownQueryError):
        registry.unregister("ghost")


def test_plan_cache_hit_on_alpha_renamed_reregistration(weather):
    batch = weather_batch(weather)
    registry = QueryRegistry(weather.functions)
    for program in batch:
        registry.register(program)
    plan_before = registry.plan()

    # Tear the whole registry down and re-register alpha-renamed twins in
    # a different order: every membership along the way was cached, so no
    # new pair merge may happen.
    for program in batch:
        registry.unregister(program.pid)
    assert registry.tree is None
    baseline_merges = registry.stats["pair_merges_total"]
    renamed = [
        parse_program(
            program_to_str(program).replace(program.pid, f"re_{program.pid}")
        )
        for program in reversed(batch)
    ]
    for program in renamed:
        registry.register(program)

    assert registry.stats["pair_merges_total"] == baseline_merges
    assert registry.stats["plan_cache_hits"] > 0
    plan_after = registry.plan()
    assert plan_after.fingerprint == plan_before.fingerprint
    assert sorted(plan_after.pids) == sorted(f"re_{p.pid}" for p in batch)
    # The relabelled plan actually notifies the new pids.
    result = registry.run(weather.rows[:30])
    assert set(result.buckets) <= set(plan_after.pids)


def test_plan_cache_capacity_zero_disables(weather):
    registry = QueryRegistry(
        weather.functions, service=ServiceConfig(plan_cache_size=0)
    )
    program = weather_batch(weather, n=1)[0]
    registry.register(program)
    registry.unregister(program.pid)
    registry.register(program)
    assert registry.stats["plan_cache_hits"] == 0


def test_rebalance_triggers_recorded_rebuild(weather):
    # factor 1.0 trips as soon as the root-grafted spine exceeds the
    # balanced depth: the fallback must be recorded, not silent.
    registry = QueryRegistry(
        weather.functions, service=ServiceConfig(rebalance_factor=1.0)
    )
    for program in weather_batch(weather, n=8, family="Q2"):
        registry.register(program)
    assert registry.stats["full_rebuilds"] > 0
    assert registry.stats["patch_fallbacks"] > 0
    rebuilt = registry.last_patch
    assert registry.tree.depth() <= 1.0 * 3 + 1 or rebuilt.fallback


def test_explain_shape(weather):
    registry = QueryRegistry(weather.functions)
    for program in weather_batch(weather, n=3):
        registry.register(program)
    doc = registry.explain()
    assert doc["queries"] == 3
    assert doc["tree"] is not None
    assert doc["last_patch"]["action"] == "add"
    assert doc["last_patch"]["pair_merges"] == 1
    assert doc["last_patch"]["derivations"]["pairs"] == 1
    assert doc["last_patch"]["derivations"]["rules"]
    assert doc["cache"]["misses"] >= 1


# ---------------------------------------------------------------------------
# event log


def test_event_log_replay_restores_identical_fingerprints(tmp_path, weather):
    log = tmp_path / "events.jsonl"
    service = ServiceConfig(event_log=str(log))
    registry = QueryRegistry(weather.functions, service=service)
    batch = weather_batch(weather, n=5)
    for program in batch:
        registry.register(program)
    registry.unregister(batch[1].pid)
    plan = registry.plan()
    entries = {q.pid: q.fingerprint for q in registry.queries()}

    replayed = QueryRegistry(weather.functions, service=service)
    assert {q.pid: q.fingerprint for q in replayed.queries()} == entries
    assert replayed.plan().fingerprint == plan.fingerprint
    assert replayed.plan().pids == plan.pids


def test_event_log_survives_multiple_generations(tmp_path, weather):
    log = tmp_path / "events.jsonl"
    service = ServiceConfig(event_log=str(log))
    first = QueryRegistry(weather.functions, service=service)
    first.register("program g1(row) { notify g1 (@row > 5); }")

    second = QueryRegistry(weather.functions, service=service)
    second.register("program g2(row) { notify g2 (@row > 50); }")

    third = QueryRegistry(weather.functions, service=service)
    assert sorted(third.pids()) == ["g1", "g2"]
    assert third.plan().fingerprint == second.plan().fingerprint


def test_admission_failure_leaves_no_state(tmp_path, weather):
    log = tmp_path / "events.jsonl"
    registry = QueryRegistry(
        weather.functions, service=ServiceConfig(event_log=str(log))
    )
    with pytest.raises(AdmissionError):
        registry.register("program bad(row) { notify bad (oops > 1); }")
    assert len(registry) == 0
    assert registry.stats["admission_rejects_total"] == 1
    # Nothing journalled → a replay starts empty.
    assert len(QueryRegistry(weather.functions, service=ServiceConfig(event_log=str(log)))) == 0


def test_telemetry_counters_flow(weather):
    from repro.telemetry import Telemetry

    telemetry = Telemetry.capture()
    registry = QueryRegistry(
        weather.functions, config=ExecutionConfig(telemetry=telemetry)
    )
    for program in weather_batch(weather, n=3):
        registry.register(program)
    snapshot = telemetry.snapshot()["metrics"]
    names = {counter["name"] for counter in snapshot["counters"]}
    assert "service_registered_total" in names
    assert "service_incremental_patches_total" in names
    assert "service_pair_merges_total" in names
