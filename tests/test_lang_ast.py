"""Tests for AST construction and sequence normal form."""

import pytest

from repro.lang import (
    Assign,
    BinOp,
    BoolOp,
    Cmp,
    IntConst,
    SKIP,
    Seq,
    Skip,
    Var,
    seq,
    seq_head,
    seq_tail,
    statements,
)


def a(n):
    return Assign(f"x{n}", IntConst(n))


class TestSeqNormalForm:
    def test_empty_seq_is_skip(self):
        assert seq() is SKIP

    def test_singleton_collapses(self):
        assert seq(a(1)) == a(1)

    def test_skip_dropped(self):
        assert seq(SKIP, a(1), SKIP) == a(1)

    def test_nested_seq_spliced(self):
        s = seq(a(1), seq(a(2), a(3)), a(4))
        assert isinstance(s, Seq)
        assert list(statements(s)) == [a(1), a(2), a(3), a(4)]

    def test_all_skips_give_skip(self):
        assert seq(SKIP, SKIP) is SKIP

    def test_direct_seq_constructor_rejects_nesting(self):
        with pytest.raises(ValueError):
            Seq((Seq((a(1), a(2))), a(3)))


class TestHeadTail:
    def test_head_of_sequence(self):
        s = seq(a(1), a(2), a(3))
        assert seq_head(s) == a(1)

    def test_tail_of_sequence(self):
        s = seq(a(1), a(2), a(3))
        assert list(statements(seq_tail(s))) == [a(2), a(3)]

    def test_head_of_single_statement(self):
        assert seq_head(a(1)) == a(1)

    def test_tail_of_single_statement_is_skip(self):
        assert seq_tail(a(1)) is SKIP

    def test_tail_of_pair_is_statement(self):
        s = seq(a(1), a(2))
        assert seq_tail(s) == a(2)

    def test_statements_of_skip_is_empty(self):
        assert list(statements(SKIP)) == []


class TestOperatorValidation:
    def test_binop_rejects_bad_op(self):
        with pytest.raises(ValueError):
            BinOp("/", IntConst(1), IntConst(2))

    def test_cmp_rejects_bad_op(self):
        with pytest.raises(ValueError):
            Cmp(">", IntConst(1), IntConst(2))

    def test_boolop_rejects_bad_op(self):
        with pytest.raises(ValueError):
            BoolOp("xor", IntConst(1), IntConst(2))


class TestStructuralEquality:
    def test_equal_expressions_hash_equal(self):
        e1 = BinOp("+", Var("x"), IntConst(1))
        e2 = BinOp("+", Var("x"), IntConst(1))
        assert e1 == e2
        assert hash(e1) == hash(e2)

    def test_distinct_ops_differ(self):
        e1 = BinOp("+", Var("x"), IntConst(1))
        e2 = BinOp("-", Var("x"), IntConst(1))
        assert e1 != e2

    def test_usable_as_dict_key(self):
        table = {BinOp("+", Var("x"), IntConst(1)): "cached"}
        assert table[BinOp("+", Var("x"), IntConst(1))] == "cached"
