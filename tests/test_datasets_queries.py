"""Tests for dataset generators and query families."""

import pytest

from repro.datasets import (
    generate_flights,
    generate_news,
    generate_stocks,
    generate_twitter,
    generate_weather,
)
from repro.lang import Interpreter, check_program, run_program
from repro.queries import DOMAIN_QUERIES
from repro.queries.families import hoist_calls
from repro.lang.builder import and_, arg, call, eq, gt, lt


SMALL = {
    "weather": lambda: generate_weather(cities=30),
    "flight": lambda: generate_flights(airlines=30),
    "news": lambda: generate_news(articles=80),
    "twitter": lambda: generate_twitter(tweets=80),
    "stock": lambda: generate_stocks(companies=15, total_daily_rows=3000),
}


@pytest.fixture(scope="module")
def datasets():
    return {name: make() for name, make in SMALL.items()}


class TestGenerators:
    def test_deterministic(self):
        a = generate_weather(cities=10, seed=7)
        b = generate_weather(cities=10, seed=7)
        fa, fb = a.functions["monthly_avg_temp"], b.functions["monthly_avg_temp"]
        assert [fa.fn(c, m) for c in range(10) for m in range(1, 13)] == [
            fb.fn(c, m) for c in range(10) for m in range(1, 13)
        ]

    def test_seed_changes_data(self):
        a = generate_weather(cities=10, seed=7)
        b = generate_weather(cities=10, seed=8)
        fa, fb = a.functions["monthly_avg_temp"], b.functions["monthly_avg_temp"]
        assert any(fa.fn(c, 1) != fb.fn(c, 1) for c in range(10))

    def test_weather_ranges(self):
        ds = generate_weather(cities=20)
        temp = ds.functions["monthly_avg_temp"]
        rain = ds.functions["monthly_rainfall"]
        for c in range(20):
            for m in range(1, 13):
                assert -10 <= temp.fn(c, m) <= 100  # fixed-point x10 of [-1, 10]
                assert 0 <= rain.fn(c, m) <= 200

    def test_flight_price_law_deterministic(self):
        ds = generate_flights(airlines=10)
        price = ds.functions["direct_price"]
        assert price.fn(3, 0, 1) == price.fn(3, 0, 1)
        assert price.fn(3, 0, 1) != price.fn(3, 1, 0) or True  # directional fares

    def test_flight_connection_superset_of_direct(self):
        ds = generate_flights(airlines=30)
        direct = ds.functions["has_direct"]
        conn = ds.functions["has_connection"]
        for a in range(30):
            for s in range(5):
                for d in range(5):
                    if s != d and direct.fn(a, s, d):
                        assert conn.fn(a, s, d)

    def test_news_zipf_selectivity_ordering(self):
        """Frequent words appear in more articles than rare words."""

        ds = generate_news(articles=400)
        contains = ds.functions["contains_word"]
        counts = {
            w: sum(contains.fn(a, w) for a in range(400)) for w in (0, 1, 2000, 3000)
        }
        assert counts[0] > counts[2000]
        assert counts[1] > counts[3000]

    def test_news_avg_word_length_positive(self):
        ds = generate_news(articles=50)
        avg = ds.functions["avg_word_length"]
        assert all(15 <= avg.fn(a) <= 120 for a in range(50))

    def test_twitter_scores_in_range(self):
        ds = generate_twitter(tweets=100)
        s = ds.functions["sentiment_score"]
        assert all(0 <= s.fn(t, k) <= 100 for t in range(100) for k in range(6))

    def test_stock_consistency(self):
        ds = generate_stocks(companies=10, total_daily_rows=2000)
        lo, hi = ds.functions["min_stock_value"], ds.functions["max_stock_value"]
        assert all(lo.fn(c) <= hi.fn(c) for c in range(10))

    def test_paper_scale_defaults(self):
        # Don't generate them (slow); just check the declared defaults.
        import inspect

        assert inspect.signature(generate_news).parameters["articles"].default == 19043
        assert inspect.signature(generate_twitter).parameters["tweets"].default == 31152
        assert (
            inspect.signature(generate_stocks).parameters["total_daily_rows"].default
            == 377423
        )
        assert inspect.signature(generate_weather).parameters["cities"].default == 500
        assert inspect.signature(generate_flights).parameters["airlines"].default == 500


class TestQueryFamilies:
    @pytest.mark.parametrize("domain", list(SMALL))
    def test_all_families_generate_and_run(self, datasets, domain):
        ds = datasets[domain]
        module = DOMAIN_QUERIES[domain]
        interp = Interpreter(ds.functions)
        for family in module.FAMILY_NAMES:
            batch = module.make_batch(ds, family, n=6, seed=3)
            assert len(batch) == 6
            pids = {p.pid for p in batch}
            assert len(pids) == 6  # unique notification ids
            for p in batch:
                check_program(p, ds.functions)
                result = interp.run(p, {"row": ds.rows[0]})
                assert set(result.notifications) == {p.pid}

    @pytest.mark.parametrize("domain", list(SMALL))
    def test_batches_deterministic(self, datasets, domain):
        ds = datasets[domain]
        module = DOMAIN_QUERIES[domain]
        fam = module.FAMILY_NAMES[0]
        assert module.make_batch(ds, fam, n=5, seed=9) == module.make_batch(ds, fam, n=5, seed=9)

    @pytest.mark.parametrize("domain", list(SMALL))
    def test_unknown_family_rejected(self, datasets, domain):
        with pytest.raises(ValueError):
            DOMAIN_QUERIES[domain].make_batch(datasets[domain], "Q99", n=3, seed=0)

    def test_families_have_varied_selectivity(self, datasets):
        """Query instances differ (parameters actually vary)."""

        ds = datasets["news"]
        module = DOMAIN_QUERIES["news"]
        batch = module.make_batch(ds, "Q1", n=20, seed=5)
        bodies = {p.body for p in batch}
        assert len(bodies) > 3


class TestHoisting:
    def test_each_call_hoisted_once(self):
        pred = and_(
            eq(call("f", arg("row")), 1), lt(call("f", arg("row")), call("g", arg("row")))
        )
        stmts, rewritten = hoist_calls(pred)
        assert len(stmts) == 2  # f(row) once, g(row) once
        from repro.lang.visitors import expr_calls

        assert not expr_calls(rewritten)

    def test_nested_calls_hoist_inner_first(self):
        pred = gt(call("f", call("g", arg("row"))), 0)
        stmts, rewritten = hoist_calls(pred)
        assert len(stmts) == 2
        # The outer call must reference the inner hoisted variable.
        from repro.lang.visitors import expr_vars

        assert expr_vars(stmts[1].expr)

    def test_semantics_preserved(self):
        from repro.lang import FunctionTable, LibraryFunction
        from repro.queries.families import expr_to_program

        ft = FunctionTable(
            [
                LibraryFunction("f", lambda r: r + 3, cost=10),
                LibraryFunction("g", lambda r: r * 2, cost=10),
            ]
        )
        pred = gt(call("f", call("g", arg("row"))), 10)
        p = expr_to_program("q", pred)
        for row in range(8):
            assert run_program(p, {"row": row}, ft).notifications == {
                "q": (row * 2 + 3) > 10
            }
