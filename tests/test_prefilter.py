"""Prefilter synthesis: soundness, degradation, operators, CLI, battery."""

import dataclasses

import pytest

from repro.analysis.prefilter import (
    PREFILTER_PID,
    SHAPES,
    classify_shape,
    compile_prefilter,
    make_guard,
    synthesize_prefilter,
)
from repro.cli import main
from repro.config import ExecutionConfig
from repro.consolidation import consolidate_all
from repro.datasets import generate_weather
from repro.lang.ast import (
    Arg,
    Assign,
    BinOp,
    BoolConst,
    BoolOp,
    Call,
    Cmp,
    If,
    IntConst,
    Notify,
    Program,
    Var,
    While,
    SKIP,
    seq,
)
from repro.lang.cost import DEFAULT_COST_MODEL
from repro.lang.interp import Interpreter
from repro.lang.printer import expr_to_str
from repro.naiad.linq import run_where_consolidated, run_where_many
from repro.queries import DOMAIN_QUERIES
from repro.telemetry import Telemetry
from repro.testing import faults
from repro.testing.oracles import run_battery


@pytest.fixture(scope="module")
def dataset():
    return generate_weather(cities=30)


@pytest.fixture(scope="module")
def batch(dataset):
    return DOMAIN_QUERIES["weather"].make_batch(dataset, "Mix", n=6, seed=2)


def _temp(month: int):
    return Call("monthly_avg_temp", (Arg("row"), IntConst(month)))


def _guarded_notify(pid: str, threshold: int) -> Program:
    """``if threshold < monthly_avg_temp(row, 1): notify pid true``"""

    body = If(Cmp("<", IntConst(threshold), _temp(1)), Notify(pid, BoolConst(True)), SKIP)
    return Program(pid=pid, params=("row",), body=body)


def _froid(pid: str) -> Program:
    """Cheap temperature test and an expensive loop-carried rainfall sum."""

    body = seq(
        Assign("t", _temp(1)),
        Assign("s", IntConst(0)),
        Assign("i", IntConst(1)),
        While(
            Cmp("<=", Var("i"), IntConst(12)),
            seq(
                Assign("s", BinOp("+", Var("s"), Call("monthly_rainfall", (Arg("row"), Var("i"))))),
                Assign("i", BinOp("+", Var("i"), IntConst(1))),
            ),
        ),
        Notify(
            pid,
            BoolOp("and", Cmp("<", IntConst(60), Var("t")), Cmp("<", IntConst(500), Var("s"))),
        ),
    )
    return Program(pid=pid, params=("row",), body=body)


class TestClassifyShape:
    def test_straight_line(self, dataset):
        program = Program(
            pid="p",
            params=("row",),
            body=seq(Assign("t", _temp(1)), Notify("p", Cmp("<", IntConst(5), Var("t")))),
        )
        assert classify_shape(program, dataset.functions) == "straight-line"

    def test_branch_free(self, dataset):
        assert classify_shape(_guarded_notify("p", 10), dataset.functions) == "branch-free"

    def test_bounded_loop(self, dataset):
        assert classify_shape(_froid("p"), dataset.functions) == "bounded-loop"

    def test_unbounded(self, dataset):
        body = seq(
            Assign("i", IntConst(0)),
            While(Cmp("<", Var("i"), _temp(1)), Assign("i", BinOp("+", Var("i"), IntConst(1)))),
            Notify("p", BoolConst(True)),
        )
        program = Program(pid="p", params=("row",), body=body)
        assert classify_shape(program, dataset.functions) == "unbounded"

    def test_every_tag_is_documented(self, dataset, batch):
        for program in batch:
            assert classify_shape(program, dataset.functions) in SHAPES


class TestSynthesis:
    def test_branch_condition_becomes_phi(self, dataset):
        pre = synthesize_prefilter(_guarded_notify("p", 42), dataset.functions)
        assert pre.certificate == "proved"
        assert expr_to_str(pre.phi) == "42 < monthly_avg_temp(@row, 1)"

    def test_loop_carried_conjunct_is_dropped_not_kept(self, dataset):
        pre = synthesize_prefilter(_froid("p"), dataset.functions)
        assert pre.certificate == "proved"
        # The rainfall sum is loop-carried, so only the cheap temperature
        # conjunct survives the necessary-condition weakening.
        assert expr_to_str(pre.phi) == "60 < monthly_avg_temp(@row, 1)"
        assert pre.dropped_conjuncts >= 1

    def test_loop_payload_weakens_to_true(self, dataset):
        body = seq(
            Assign("s", IntConst(0)),
            Assign("i", IntConst(1)),
            While(
                Cmp("<=", Var("i"), IntConst(12)),
                seq(
                    Assign("s", BinOp("+", Var("s"), Call("monthly_rainfall", (Arg("row"), Var("i"))))),
                    Assign("i", BinOp("+", Var("i"), IntConst(1))),
                ),
            ),
            Notify("p", Cmp("<", IntConst(500), Var("s"))),
        )
        pre = synthesize_prefilter(Program(pid="p", params=("row",), body=body), dataset.functions)
        assert pre.trivial
        assert pre.certificate == "trivial"

    def test_dead_site_rejects_everything(self, dataset):
        program = Program(pid="p", params=("row",), body=Notify("p", BoolConst(False)))
        pre = synthesize_prefilter(program, dataset.functions)
        assert pre.rejects_everything
        assert pre.certificate == "proved"

    def test_smt_unknown_degrades_without_raising(self, dataset):
        with faults.smt_unknown():
            pre = synthesize_prefilter(_guarded_notify("p", 42), dataset.functions)
        assert pre.trivial
        assert pre.certificate == "degraded"
        assert "not proved" in pre.degraded_reason

    def test_unknown_function_fails_open_at_compile_time(self):
        # Synthesis may still prove a phi that mentions the unknown call
        # (it is a sound uninterpreted term); the compiled guard then hits
        # the interpreter fallback, which raises at call time — and the
        # guard must swallow that and pass the record through unfiltered.
        from repro.lang.functions import FunctionTable

        program = Program(
            pid="p",
            params=("row",),
            body=Notify("p", Cmp("<", IntConst(1), Call("missing", (Arg("row"),)))),
        )
        functions = FunctionTable()
        pre = synthesize_prefilter(program, functions)  # must not raise
        assert pre.pid == "p"
        guard = make_guard(program, functions, prefilter=pre)
        if guard is not None:
            assert guard({"row": 0}) == (True, 0)  # fail open, charge nothing


class TestGuardSoundness:
    def test_rejected_rows_notify_nobody(self, dataset, batch):
        interp = Interpreter(dataset.functions, DEFAULT_COST_MODEL)
        for program in batch:
            guard = make_guard(program, dataset.functions)
            if guard is None:
                continue
            rejected = 0
            for row in dataset.rows:
                args = {program.params[0]: row}
                passes, cost = guard(args)
                assert cost > 0
                if passes:
                    continue
                rejected += 1
                result = interp.run(program, args)
                assert not any(result.notifications.values()), (
                    f"{program.pid} rejected row {row} but it notifies"
                )
            assert rejected >= 0  # rejection count is workload-dependent

    def test_trivial_prefilter_compiles_to_no_guard(self, dataset):
        pre = synthesize_prefilter(
            Program(pid="p", params=("row",), body=Notify("p", BoolConst(True))),
            dataset.functions,
        )
        assert pre.trivial
        assert compile_prefilter(pre, _guarded_notify("p", 1), dataset.functions) is None

    def test_guard_broadcasts_on_reserved_pid_only(self, dataset):
        guard = make_guard(_guarded_notify("p", 42), dataset.functions)
        assert guard is not None
        assert PREFILTER_PID.startswith("__")


class TestOperators:
    def test_buckets_identical_with_and_without_prefilter(self, dataset, batch):
        rows = dataset.rows
        base = ExecutionConfig()
        pre = ExecutionConfig(prefilter=True)
        many_off = run_where_many(rows, batch, dataset.functions, config=base)
        many_on = run_where_many(rows, batch, dataset.functions, config=pre)
        cons_off, _ = run_where_consolidated(rows, batch, dataset.functions, config=base)
        cons_on, _ = run_where_consolidated(rows, batch, dataset.functions, config=pre)
        assert many_off.buckets == many_on.buckets
        assert cons_off.buckets == cons_on.buckets
        assert many_off.buckets == cons_on.buckets

    def test_prefilter_wins_on_cheap_guard_expensive_body(self, dataset):
        # The guard only pays off when phi is much cheaper than the UDF:
        # every record pays the guard, rejected records skip the loop.
        # (On all-cheap batches like Mix the guard can cost as much as the
        # UDF itself, which is exactly why prefilter defaults to off.)
        froid = [_froid(f"q{i}") for i in range(3)]
        rows = dataset.rows
        off = run_where_many(rows, froid, dataset.functions, config=ExecutionConfig())
        on = run_where_many(
            rows, froid, dataset.functions, config=ExecutionConfig(prefilter=True)
        )
        assert off.buckets == on.buckets
        assert on.metrics.udf_cost < off.metrics.udf_cost

    def test_telemetry_counters_and_selectivity_gauge(self, dataset):
        # Q1 queries are branch-free with proved guards, so the merged
        # program's prefilter is guaranteed non-trivial.
        q1 = DOMAIN_QUERIES["weather"].make_batch(dataset, "Q1", n=4, seed=2)
        telemetry = Telemetry.capture()
        config = ExecutionConfig(prefilter=True, telemetry=telemetry)
        run_where_consolidated(dataset.rows, q1, dataset.functions, config=config)
        snap = telemetry.snapshot()
        counters = {c["name"]: c["value"] for c in snap["metrics"]["counters"]}
        gauges = {g["name"] for g in snap["metrics"]["gauges"]}
        assert counters.get("prefilter_checked_total", 0) > 0
        assert "prefilter_rejected_total" in counters
        assert "prefilter_selectivity" in gauges
        assert counters.get("prefilter_synthesized_total", 0) >= 1

    def test_disabled_prefilter_builds_no_guard(self, dataset, batch):
        from repro.naiad.operators import WhereMany

        vertex = WhereMany(batch, dataset.functions)
        assert vertex.guards is None


class TestConsolidateAll:
    def test_report_carries_prefilter_and_span(self, dataset, batch):
        telemetry = Telemetry.capture(trace=True)
        config = ExecutionConfig(prefilter=True, telemetry=telemetry)
        report = consolidate_all(batch, dataset.functions, config=config, provenance=True)
        assert report.prefilter is not None
        assert report.prefilter.certificate in ("proved", "trivial")
        assert report.prefilter_seconds > 0
        assert report.derivations[-1].merged == f"φ[{report.program.pid}]"

        def names(spans):
            for span in spans:
                yield span["name"]
                yield from names(span.get("children", ()))

        assert "consolidate.prefilter" in set(names(telemetry.tracer.to_dicts()))

    def test_prefilter_off_by_default(self, dataset, batch):
        report = consolidate_all(batch, dataset.functions)
        assert report.prefilter is None
        assert report.prefilter_seconds == 0.0


class TestConfig:
    def test_default_off_and_replace(self):
        config = ExecutionConfig()
        assert config.prefilter is False
        assert dataclasses.replace(config, prefilter=True).prefilter is True

    def test_linq_threads_prefilter_flag(self):
        from repro.naiad.linq import from_collection

        query = from_collection([], config=ExecutionConfig(prefilter=True))
        assert query._udf_kwargs(None, None)["prefilter"] is True
        assert from_collection([])._udf_kwargs(None, None)["prefilter"] is False


class TestBattery:
    def test_battery_runs_prefilter_oracle_clean(self, dataset, batch):
        result = run_battery(batch, dataset)
        assert result.ok, [str(d) for d in result.discrepancies]

    def test_battery_clean_under_smt_unknown(self, dataset, batch):
        # Fault-injected solver unknowns must degrade guards to true, never
        # produce an unsound rejection or an exception.
        with faults.smt_unknown():
            result = run_battery(batch, dataset)
        prefilter_issues = [d for d in result.discrepancies if d.oracle == "prefilter"]
        assert not prefilter_issues, [str(d) for d in prefilter_issues]


class TestCli:
    def test_prefilter_command_json(self, capsys):
        import json

        rc = main(["prefilter", "--domain", "weather", "--family", "Q1", "--n", "2", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["domain"] == "weather"
        assert all(row["shape"] in SHAPES for row in doc["rows"])
        assert any(row["certificate"] == "proved" for row in doc["rows"])

    def test_prefilter_command_consolidate_text(self, capsys):
        rc = main(
            ["prefilter", "--domain", "weather", "--family", "Q1", "--n", "2", "--consolidate"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # The merged program's guard rides last; its pid joins the inputs.
        assert "&" in out
        assert "branch-free" in out and "proved" in out

    def test_lint_sarif_with_prefilter_findings(self, capsys):
        import json

        rc = main(
            ["lint", "--domain", "weather", "--family", "Q1", "--n", "2",
             "--format", "sarif", "--prefilter"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        levels = {r["level"] for r in run["results"]}
        assert levels <= {"note", "warning", "error"}
        assert any(r["ruleId"] == "prefilter" for r in run["results"])
