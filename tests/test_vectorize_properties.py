"""Property-based contracts of the columnar backend.

Three invariants the mask machinery must hold for *every* program and
every record set, not just the curated fixtures:

* **batch-size invariance** — a batch is a unit of scheduling, never of
  semantics.  Splitting the records at any point and running two batches
  yields record-for-record identical costs and notifications.
* **degenerate batches** — the empty batch and the fully-guard-rejected
  batch are first-class: no kernels crash on zero rows, no cost leaks.
* **one-sided masks** — an ``If`` whose condition column is all-true or
  all-false (the partition produces one empty arm) must still match the
  interpreter exactly; the empty arm contributes nothing.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.config import ExecutionConfig
from repro.lang import parse_program
from repro.lang.interp import Interpreter
from repro.lang.vectorize import columns_from_records, vectorize_program
from repro.naiad import run_where_many
from repro.testing import case_inputs, generate_case, schema_dataset

WEATHER = schema_dataset("weather")
ROWS = [args["row"] for args in case_inputs("weather", limit=12)]


def _per_record(batch, n):
    return [
        (batch.costs[i], batch.notifications_at(i), batch.notification_costs_at(i))
        for i in range(n)
    ]


def _interp_rows(program, rows):
    """Ground-truth outcomes; None when some record errors (assume away)."""

    interp = Interpreter(WEATHER.functions)
    out = []
    for row in rows:
        try:
            r = interp.run(program, {program.params[0]: row})
        except Exception:
            return None
        out.append((r.cost, r.notifications, r.notification_costs))
    return out


@given(seed=st.integers(0, 40), split=st.integers(0, len(ROWS)))
@settings(max_examples=40)
def test_batch_split_invariance(seed, split):
    """Splitting the record stream anywhere changes nothing observable."""

    for program in generate_case(seed, "weather", 3, n_programs=2):
        want = _interp_rows(program, ROWS)
        assume(want is not None)
        vp = vectorize_program(program, WEATHER.functions)
        whole = vp.run_batch(
            columns_from_records(program, ROWS), len(ROWS)
        )
        left_rows, right_rows = ROWS[:split], ROWS[split:]
        left = vp.run_batch(
            columns_from_records(program, left_rows), len(left_rows)
        )
        right = vp.run_batch(
            columns_from_records(program, right_rows), len(right_rows)
        )
        rejoined = _per_record(left, len(left_rows)) + _per_record(
            right, len(right_rows)
        )
        assert rejoined == _per_record(whole, len(ROWS))
        assert rejoined == want


@given(seed=st.integers(0, 40))
@settings(max_examples=15)
def test_empty_batch_is_a_noop(seed):
    for program in generate_case(seed, "weather", 3, n_programs=2):
        vp = vectorize_program(program, WEATHER.functions)
        batch = vp.run_batch(columns_from_records(program, []), 0)
        assert batch.n == 0
        assert batch.costs == []
        assert all(not any(mask) for mask in batch.present.values())


GUARDED_SRC = """
program gq(row) {{
  t := yearly_avg_temp(@row);
  if (t > {threshold}) {{
    notify gq (t > {threshold} + 5);
  }} else {{
    notify gq false;
  }}
}}
"""


@given(
    threshold=st.one_of(
        st.just(-(10 ** 6)),  # all-true mask: else-arm positions empty
        st.just(10 ** 6),  # all-false mask: then-arm positions empty
        st.integers(-100, 150),
    )
)
@settings(max_examples=30)
def test_one_sided_and_mixed_if_masks(threshold):
    program = parse_program(GUARDED_SRC.format(threshold=threshold))
    vp = vectorize_program(program, WEATHER.functions)
    assert vp.vectorized
    batch = vp.run_batch(columns_from_records(program, ROWS), len(ROWS))
    assert not batch.fallback
    assert _per_record(batch, len(ROWS)) == _interp_rows(program, ROWS)


@given(threshold=st.sampled_from([-(10 ** 6), 10 ** 6]))
@settings(max_examples=4)
def test_all_masked_out_prefilter_batch(threshold):
    """A φ that rejects (or passes) every record must stay in lockstep with
    the compiled backend under the same guard — including the degenerate
    batch where nothing survives compaction."""

    program = parse_program(GUARDED_SRC.format(threshold=threshold))
    compiled = run_where_many(
        ROWS, [program], WEATHER.functions,
        config=ExecutionConfig(backend="compiled", prefilter=True),
    )
    vectorized = run_where_many(
        ROWS, [program], WEATHER.functions,
        config=ExecutionConfig(backend="vectorized", prefilter=True),
    )
    assert {p: list(map(repr, rs)) for p, rs in vectorized.buckets.items()} == {
        p: list(map(repr, rs)) for p, rs in compiled.buckets.items()
    }
    assert vectorized.metrics.udf_cost == compiled.metrics.udf_cost
    assert vectorized.metrics.total_cost == compiled.metrics.total_cost
