"""Fault injection: every induced failure must degrade, never corrupt.

The production modules carry one ``FAULT_HOOK`` seam each (SMT solver,
compile pipeline, consolidation driver).  These tests force each failure
mode and assert the documented degradation: sequential-baseline fallback,
interpreter fallback, serial redo — with observable behaviour unchanged —
and that the oracle battery stays green under every *sound* fault while
still catching a genuine miscompile.
"""

import pytest

from repro.consolidation import consolidate_all
from repro.consolidation.divide_conquer import SMT_UNKNOWN_NOTE
from repro.lang.compile import CompileError, compile_cached, make_runner
from repro.lang.interp import Interpreter
from repro.smt.solver import Solver
from repro.smt.terms import le_f, sym
from repro.testing import (
    case_inputs,
    compile_cache_miss,
    compile_fallback,
    consolidation_pair_crash,
    generate_case,
    miscompile,
    run_battery,
    schema_dataset,
    smt_crash,
    smt_unknown,
)

WEATHER = schema_dataset("weather")
PROGRAMS = generate_case(2, "weather", 3, n_programs=4)
INPUTS = case_inputs("weather")


def run_all(programs, functions, inputs):
    """Sequential ground truth: per-program notification maps."""

    interp = Interpreter(functions)
    out = []
    for args in inputs:
        notes = {}
        for p in programs:
            notes.update(interp.run(p, args).notifications)
        out.append(notes)
    return out


def merged_notifications(report, functions, inputs):
    interp = Interpreter(functions)
    return [interp.run(report.program, args).notifications for args in inputs]


BASELINE = run_all(PROGRAMS, WEATHER.functions, INPUTS)


class TestSmtFaults:
    def test_unknown_is_counted_and_conservative(self):
        solver = Solver()
        with smt_unknown():
            assert solver.is_sat(le_f(sym("x"), sym("y"))) == "unknown"
        assert solver.stats.unknowns == 1
        # "unknown" must never prove anything — even a trivially valid
        # entailment is answered "cannot prove".
        with smt_unknown():
            assert not solver.entails(le_f(sym("a"), sym("b")), le_f(sym("a"), sym("b")))

    def test_unknown_mid_batch_never_raises(self):
        """Satellite S4: unknown degrades the merge, not the batch."""

        with smt_unknown():
            report = consolidate_all(list(PROGRAMS), WEATHER.functions)
        assert not report.skipped_pairs
        assert report.degraded
        assert any(d.startswith(SMT_UNKNOWN_NOTE) for d in report.degradations)
        assert report.solver_stats["unknowns"] > 0
        assert merged_notifications(report, WEATHER.functions, INPUTS) == BASELINE

    def test_unknown_from_midway_through_batch(self):
        # Flip to unknown only after the first few queries: the batch has
        # already committed some SMT-backed rewrites by then.
        with smt_unknown(after=5):
            report = consolidate_all(list(PROGRAMS), WEATHER.functions)
        assert merged_notifications(report, WEATHER.functions, INPUTS) == BASELINE

    def test_crash_skips_pair_into_sequential(self):
        with smt_crash():
            report = consolidate_all(list(PROGRAMS), WEATHER.functions)
        assert report.skipped_pairs, "a crashing solver must skip pairs"
        for skip in report.skipped_pairs:
            assert set(skip) == {"left", "right", "reason"}
        assert merged_notifications(report, WEATHER.functions, INPUTS) == BASELINE

    def test_battery_green_under_smt_faults(self):
        for fault in (smt_unknown, smt_crash):
            with fault():
                result = run_battery(
                    PROGRAMS, WEATHER, inputs=INPUTS,
                    executors=("serial",),
                    check_validator=fault is smt_unknown,
                )
            assert result.ok, (fault.__name__, [str(d) for d in result.discrepancies])


class TestCompileFaults:
    def test_fallback_reaches_interpreter(self):
        p = PROGRAMS[0]
        with compile_fallback():
            with pytest.raises(CompileError):
                compile_cached(p, WEATHER.functions)
            runner = make_runner(p, WEATHER.functions, backend="compiled")
            got = [runner(args).notifications for args in INPUTS]
        interp = Interpreter(WEATHER.functions)
        want = [interp.run(p, args).notifications for args in INPUTS]
        assert got == want

    def test_cache_miss_recompiles_identically(self):
        p = PROGRAMS[0]
        with compile_cache_miss():
            a = compile_cached(p, WEATHER.functions)
            b = compile_cached(p, WEATHER.functions)
            assert a is not None and b is not None
            assert a is not b, "every lookup must be a forced miss"
        assert a.source == b.source

    def test_battery_green_under_compile_faults(self):
        for fault in (compile_fallback, compile_cache_miss):
            with fault():
                result = run_battery(
                    PROGRAMS, WEATHER, inputs=INPUTS,
                    executors=("serial",),
                    check_validator=fault is compile_cache_miss,
                )
            assert result.ok, (fault.__name__, [str(d) for d in result.discrepancies])

    def test_miscompile_is_caught(self):
        """The battery must detect a deliberately corrupted backend."""

        with miscompile():
            result = run_battery(
                PROGRAMS, WEATHER, inputs=INPUTS,
                executors=("serial",), check_validator=False,
            )
        assert not result.ok
        assert "backend" in {d.oracle for d in result.discrepancies}


class TestConsolidationFaults:
    def test_pair_crash_degrades_and_records(self):
        with consolidation_pair_crash():
            report = consolidate_all(list(PROGRAMS), WEATHER.functions)
        assert report.skipped_pairs
        assert report.degraded
        assert merged_notifications(report, WEATHER.functions, INPUTS) == BASELINE

    def test_pair_crash_battery_green(self):
        with consolidation_pair_crash():
            result = run_battery(
                PROGRAMS, WEATHER, inputs=INPUTS,
                executors=("serial",), check_validator=False,
            )
        assert result.ok, [str(d) for d in result.discrepancies]

    def test_clean_run_not_degraded(self):
        report = consolidate_all(list(PROGRAMS), WEATHER.functions)
        assert not report.skipped_pairs
        hard = [d for d in report.degradations if not d.startswith(SMT_UNKNOWN_NOTE)]
        assert not hard


@pytest.mark.slow
class TestWorkerDeath:
    def test_dead_worker_redone_serially(self):
        from repro.testing import worker_death

        baseline = consolidate_all(list(PROGRAMS), WEATHER.functions)
        with worker_death():
            report = consolidate_all(
                list(PROGRAMS), WEATHER.functions, executor="process", max_workers=2
            )
        assert report.degradations, "the broken pool must be recorded"
        assert any("process pool failed" in d for d in report.degradations)
        assert report.program == baseline.program
