"""Tests for the Tseitin encoder and its relevancy filtering."""

from repro.smt.cnf import CnfBuilder
from repro.smt.sat import SatSolver
from repro.smt import (
    FALSE_F,
    TRUE_F,
    eq_f,
    fand,
    fnot,
    for_,
    le_f,
    num,
    sym,
)

x, y, z = sym("x"), sym("y"), sym("z")
A = le_f(x, num(0))
B = le_f(y, num(0))
C = eq_f(z, num(3))


def solve(formula):
    sat = SatSolver()
    builder = CnfBuilder(sat)
    builder.assert_formula(formula)
    return sat, builder, sat.solve()


class TestEncoding:
    def test_atom_assertion(self):
        _sat, builder, result = solve(A)
        assert result.is_sat
        assert result.model[builder.atom_vars[A]] is True

    def test_negated_atom(self):
        # fnot(le) normalises to another Le atom; eq stays under FNot.
        _sat, builder, result = solve(fnot(C))
        assert result.is_sat
        assert result.model[builder.atom_vars[C]] is False

    def test_and_forces_all(self):
        _sat, builder, result = solve(fand(A, fnot(C)))
        assert result.is_sat
        assert result.model[builder.atom_vars[A]] is True
        assert result.model[builder.atom_vars[C]] is False

    def test_or_needs_one(self):
        _sat, builder, result = solve(for_(A, C))
        assert result.is_sat
        values = [result.model[builder.atom_vars[f]] for f in (A, C)]
        assert any(values)

    def test_constants(self):
        _sat, _b, result = solve(TRUE_F)
        assert result.is_sat
        _sat, _b, result = solve(FALSE_F)
        assert result.is_unsat

    def test_shared_subformula_encoded_once(self):
        sat = SatSolver()
        builder = CnfBuilder(sat)
        inner = fand(A, C)
        builder.assert_formula(for_(inner, B))
        before = sat.num_vars
        builder.literal(inner)  # second request: cached
        assert sat.num_vars == before


class TestSufficientLiterals:
    def test_or_reports_single_witness(self):
        _sat, builder, result = solve(for_(A, B, C))
        lits = builder.sufficient_literals(result.model)
        # One true disjunct is enough; don't-cares must not leak through.
        assert len(lits) == 1
        atom, value = lits[0]
        assert value is True

    def test_and_reports_all_conjuncts(self):
        _sat, builder, result = solve(fand(A, B))
        lits = dict(builder.sufficient_literals(result.model))
        assert lits == {A: True, B: True}

    def test_nested_structure(self):
        formula = fand(for_(A, B), fnot(C))
        _sat, builder, result = solve(formula)
        lits = dict(builder.sufficient_literals(result.model))
        assert lits[C] is False
        assert (A in lits) or (B in lits)
        # At most one of the disjuncts is reported.
        assert not (A in lits and B in lits)

    def test_witness_actually_satisfies(self):
        """The reported literal set logically forces the root formula."""

        formula = for_(fand(A, B), fand(fnot(C), B))
        _sat, builder, result = solve(formula)
        lits = dict(builder.sufficient_literals(result.model))

        def eval_with(f, table):
            from repro.smt import FAnd, FNot, FOr, FTrue, FFalse

            if isinstance(f, FTrue):
                return True
            if isinstance(f, FFalse):
                return False
            if isinstance(f, FAnd):
                return all(eval_with(g, table) for g in f.args)
            if isinstance(f, FOr):
                return any(eval_with(g, table) for g in f.args)
            if isinstance(f, FNot):
                return not eval_with(f.operand, table)
            return table.get(f, None)

        # Assigning only the witness literals, with every other atom set
        # adversarially, must still satisfy the root formula.
        full = {A: False, B: False, C: True}  # adversarial defaults
        full.update(lits)
        assert eval_with(formula, full)
