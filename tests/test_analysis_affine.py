"""Tests for the Karr affine-equality domain and its invariant engine."""

from fractions import Fraction

import pytest

from repro.analysis import SpEngine
from repro.analysis.affine import (
    AffineState,
    affine_loop_invariant,
    equalities_from_formula,
    transfer,
)
from repro.analysis.invariants import loop_invariant
from repro.consolidation import ConsolidationOptions, Consolidator, check_soundness
from repro.lang import (
    FunctionTable,
    LibraryFunction,
    add,
    arg,
    assign,
    block,
    call,
    ge,
    gt,
    if_,
    ite_notify,
    le,
    lift,
    lt,
    mul,
    program,
    sub,
    var,
    while_,
)
from repro.smt import Num, Solver, TRUE_F, eq_f, fand
from repro.smt.interface import var_sym
from repro.smt.terms import t_sub

FT = FunctionTable([LibraryFunction("f", lambda x: (x * x) % 9, cost=25)])

V = ("v!x", "v!y", "v!z")


def row(c0, *coeffs):
    return [Fraction(c0), *map(Fraction, coeffs)]


class TestAffineState:
    def test_top_entails_nothing(self):
        top = AffineState.top(V)
        assert not top.entails_row(row(0, 1, 0, 0))  # x = 0 not implied

    def test_add_and_entail(self):
        s = AffineState.top(V).add_equality(row(-3, 1, 0, 0))  # x = 3
        assert s.entails_row(row(-3, 1, 0, 0))
        assert not s.entails_row(row(-4, 1, 0, 0))

    def test_inconsistent_is_bottom(self):
        s = AffineState.top(V).add_equality(row(-3, 1, 0, 0)).add_equality(row(-4, 1, 0, 0))
        assert s.is_bottom

    def test_derived_equality(self):
        # x = 3 and y = x + 1 entail y = 4.
        s = (
            AffineState.top(V)
            .add_equality(row(-3, 1, 0, 0))
            .add_equality(row(1, 1, -1, 0))  # x - y + 1 = 0
        )
        assert s.entails_row(row(-4, 0, 1, 0))

    def test_havoc_forgets(self):
        s = AffineState.top(V).add_equality(row(-3, 1, 0, 0)).add_equality(row(0, 1, -1, 0))
        h = s.havoc("v!x")
        assert not h.entails_row(row(-3, 1, 0, 0))
        # But the consequence y = 3 (derived through x) must survive.
        assert h.entails_row(row(-3, 0, 1, 0))

    def test_invertible_assign(self):
        # x = 3 ; x := x + 1 ==> x = 4
        s = AffineState.top(V).add_equality(row(-3, 1, 0, 0))
        s2 = s.assign_linear("v!x", 1, {"v!x": 1})
        assert s2.entails_row(row(-4, 1, 0, 0))

    def test_fresh_assign(self):
        # y := x + 2 under x = 1 gives y = 3
        s = AffineState.top(V).add_equality(row(-1, 1, 0, 0))
        s2 = s.assign_linear("v!y", 2, {"v!x": 1})
        assert s2.entails_row(row(-3, 0, 1, 0))

    def test_join_keeps_common(self):
        a = AffineState.top(V).add_equality(row(-1, 1, 0, 0)).add_equality(row(-2, 0, 1, 0))
        b = AffineState.top(V).add_equality(row(-5, 1, 0, 0)).add_equality(row(-6, 0, 1, 0))
        j = a.join(b)
        # x differs between the branches, but y = x + 1 holds in both.
        assert not j.entails_row(row(-1, 1, 0, 0))
        assert j.entails_row(row(1, 1, -1, 0))

    def test_join_with_bottom(self):
        a = AffineState.top(V).add_equality(row(-1, 1, 0, 0))
        assert a.join(AffineState.bottom(V)).entails_row(row(-1, 1, 0, 0))


class TestTransfer:
    def test_branch_join(self):
        # if ...: x := 1; y := 2 else: x := 5; y := 6  ==> y = x + 1
        s = AffineState.top(("v!x", "v!y"))
        stmt = if_(
            lt(arg("n"), 0),
            block(assign("x", 1), assign("y", 2)),
            block(assign("x", 5), assign("y", 6)),
        )
        out = transfer(s, stmt)
        assert out.entails_row([Fraction(1), Fraction(1), Fraction(-1)])

    def test_call_havocs(self):
        s = AffineState.top(("v!x",)).add_equality([Fraction(-1), Fraction(1)])
        out = transfer(s, assign("x", call("f", var("x"))))
        assert not out.entails_row([Fraction(-1), Fraction(1)])

    def test_nonlinear_havocs(self):
        s = AffineState.top(("v!x", "v!y")).add_equality([Fraction(-1), Fraction(1), Fraction(0)])
        out = transfer(s, assign("x", mul(var("x"), var("y"))))
        assert not out.entails_row([Fraction(-1), Fraction(1), Fraction(0)])


class TestLoopInvariants:
    def entry(self, engine, assigns):
        psi = TRUE_F
        for name, e in assigns:
            psi = engine.assign(psi, name, lift(e) if isinstance(e, int) else e)
        return psi

    def test_counter_offset(self):
        engine = SpEngine(FT)
        psi = self.entry(engine, [("i", arg("a")), ("j", sub(arg("a"), 1))])
        body = block(assign("i", sub(var("i"), 1)), assign("j", sub(var("j"), 1)))
        inv = affine_loop_invariant(engine, psi, body)
        solver = Solver()
        assert solver.entails(inv, eq_f(t_sub(var_sym("i"), var_sym("j")), Num(1)))

    def test_parallel_counters(self):
        engine = SpEngine(FT)
        psi = self.entry(engine, [("m1", 1), ("m2", 1)])
        body = block(assign("m1", add(var("m1"), 1)), assign("m2", add(var("m2"), 1)))
        inv = affine_loop_invariant(engine, psi, body)
        solver = Solver()
        assert solver.entails(inv, eq_f(t_sub(var_sym("m1"), var_sym("m2")), Num(0)))

    def test_scaled_relation(self):
        """y climbs by 2 when x climbs by 1: Karr finds y = 2x (probe misses it)."""

        engine = SpEngine(FT)
        psi = self.entry(engine, [("x", 0), ("y", 0)])
        body = block(assign("x", add(var("x"), 1)), assign("y", add(var("y"), 2)))
        inv = affine_loop_invariant(engine, psi, body)
        solver = Solver()
        from repro.smt.terms import t_scale

        goal = eq_f(t_sub(var_sym("y"), t_scale(2, var_sym("x"))), Num(0))
        assert solver.entails(inv, goal)

    def test_no_false_equalities(self):
        engine = SpEngine(FT)
        psi = self.entry(engine, [("x", 0), ("y", 0)])
        body = block(assign("x", add(var("x"), 1)), assign("y", call("f", var("y"))))
        inv = affine_loop_invariant(engine, psi, body)
        solver = Solver()
        for c in range(-2, 3):
            assert not solver.entails(inv, eq_f(t_sub(var_sym("x"), var_sym("y")), Num(c)))

    def test_mode_plumbs_through_loop_invariant(self):
        engine = SpEngine(FT)
        solver = Solver()
        psi = self.entry(engine, [("i", 0), ("j", 0)])
        body = block(assign("i", add(var("i"), 1)), assign("j", add(var("j"), 1)))
        conds = [lt(var("i"), 9), lt(var("j"), 9)]
        for mode in ("probe", "karr", "both"):
            inv = loop_invariant(engine, solver, psi, conds, body, mode=mode)
            assert solver.entails(inv, eq_f(t_sub(var_sym("i"), var_sym("j")), Num(0)))
        with pytest.raises(ValueError):
            loop_invariant(engine, solver, psi, conds, body, mode="psychic")


class TestConsolidationWithKarr:
    def test_loop_fusion_under_karr_engine(self):
        options = ConsolidationOptions(invariant_engine="karr")

        def prog(pid, thr):
            return program(
                pid,
                ("row",),
                assign("s", 0),
                assign("m", 1),
                while_(
                    le(var("m"), 10),
                    block(
                        assign("s", add(var("s"), call("f", var("m")))),
                        assign("m", add(var("m"), 1)),
                    ),
                ),
                ite_notify(pid, gt(var("s"), thr)),
            )

        p1, p2 = prog("a", 5), prog("b", 9)
        c = Consolidator(FT, options=options)
        merged = c.consolidate(p1, p2)
        assert "Loop2" in c.trace
        report = check_soundness([p1, p2], merged, FT, [{"row": 0}])
        assert report.ok, report.violations
