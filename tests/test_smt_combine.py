"""Tests for the theory combiner (EUF + LIA literal conjunctions)."""

from repro.smt.combine import (
    TheoryLiteral,
    _congruence_candidate_pairs,
    check_literals,
    minimize_core,
)
from repro.smt.euf import CongruenceClosure
from repro.smt import Eq, Le, app, eq_f, fnot, le_f, lt_f, num, sym, t_add, t_sub

x, y, z = sym("x"), sym("y"), sym("z")


def lit(kind, lhs, rhs=num(0)):
    return TheoryLiteral(kind, t_sub(lhs, rhs))


class TestFromFormula:
    def test_positive_eq(self):
        f = eq_f(x, y)
        assert TheoryLiteral.from_formula(f, True).kind == "eq"

    def test_negative_eq_is_diseq(self):
        f = eq_f(x, y)
        assert TheoryLiteral.from_formula(f, False).kind == "ne"

    def test_negative_le_flips(self):
        f = le_f(x, num(0))
        flipped = TheoryLiteral.from_formula(f, False)
        assert flipped.kind == "le"
        # not(x <= 0)  ==  1 - x <= 0
        from repro.smt import as_linear

        const, coeffs = as_linear(flipped.term)
        assert const == 1 and coeffs == {x: -1}


class TestCheckLiterals:
    def test_empty_sat(self):
        assert check_literals([]).status == "sat"

    def test_pure_lia_conflict(self):
        # x <= 0 and 1 <= x  (written as 1 - x <= 0)
        lits = [
            TheoryLiteral("le", x),
            TheoryLiteral("le", t_sub(num(1), x)),
        ]
        assert check_literals(lits).status == "unsat"

    def test_pure_euf_conflict(self):
        # x = y, f(x) != f(y)
        lits = [
            TheoryLiteral("eq", t_sub(x, y)),
            TheoryLiteral("ne", t_sub(app("f", x), app("f", y))),
        ]
        assert check_literals(lits).status == "unsat"

    def test_combined_conflict_via_propagation(self):
        # x <= y, y <= x, f(x) != f(y): needs LIA -> EUF equality propagation
        lits = [
            TheoryLiteral("le", t_sub(x, y)),
            TheoryLiteral("le", t_sub(y, x)),
            TheoryLiteral("ne", t_sub(app("f", x), app("f", y))),
        ]
        assert check_literals(lits).status == "unsat"

    def test_constants_through_functions(self):
        # x = 3, y = 3, f(x) != f(y)
        lits = [
            TheoryLiteral("eq", t_sub(x, num(3))),
            TheoryLiteral("eq", t_sub(y, num(3))),
            TheoryLiteral("ne", t_sub(app("f", x), app("f", y))),
        ]
        assert check_literals(lits).status == "unsat"

    def test_satisfiable_mixed(self):
        lits = [
            TheoryLiteral("le", t_sub(x, y)),
            TheoryLiteral("eq", t_sub(z, app("f", x))),
            TheoryLiteral("ne", t_sub(z, app("f", y))),
        ]
        assert check_literals(lits).status == "sat"

    def test_function_result_feeding_arithmetic(self):
        # a = f(x), a >= 5, f(x) <= 4 is inconsistent.
        a = sym("a")
        lits = [
            TheoryLiteral("eq", t_sub(a, app("f", x))),
            TheoryLiteral("le", t_sub(num(5), a)),
            TheoryLiteral("le", t_sub(app("f", x), num(4))),
        ]
        assert check_literals(lits).status == "unsat"


class TestCandidatePairs:
    def _atoms(self, lits):
        cc = CongruenceClosure()
        for l in lits:
            cc.add_term(l.term)
        return cc

    def test_same_function_args_paired(self):
        lits = [TheoryLiteral("ne", t_sub(app("f", x), app("f", y)))]
        cc = self._atoms(lits)
        pairs = _congruence_candidate_pairs(lits, cc)
        assert (x, y) in pairs or (y, x) in pairs

    def test_distinct_numerals_skipped(self):
        lits = [TheoryLiteral("ne", t_sub(app("f", x, num(1)), app("f", y, num(2))))]
        cc = self._atoms(lits)
        assert _congruence_candidate_pairs(lits, cc) == []

    def test_different_functions_not_paired(self):
        lits = [TheoryLiteral("ne", t_sub(app("f", x), app("g", y)))]
        cc = self._atoms(lits)
        assert _congruence_candidate_pairs(lits, cc) == []


class TestMinimizeCore:
    def test_core_is_unsat_and_smaller(self):
        irrelevant = [TheoryLiteral("le", t_sub(sym(f"u{i}"), sym(f"w{i}"))) for i in range(4)]
        conflict = [
            TheoryLiteral("le", x),
            TheoryLiteral("le", t_sub(num(1), x)),
        ]
        core = minimize_core(irrelevant + conflict)
        assert check_literals(list(core)).status == "unsat"
        assert len(core) == 2

    def test_oversized_input_returned_whole(self):
        lits = [TheoryLiteral("le", t_sub(sym(f"v{i}"), sym(f"v{i+1}"))) for i in range(30)]
        lits += [TheoryLiteral("le", t_sub(sym("v30"), sym("v0"))), TheoryLiteral("le", t_sub(num(1), num(0)))]
        assert len(minimize_core(lits, budget=5)) == len(lits)
