"""Tests for cross-simplification (Figure 3 judgments) and folding."""

import pytest

from repro.analysis import SpEngine
from repro.consolidation import Context, fold_expr, ir_from_linear, ir_linear
from repro.lang import (
    FALSE,
    FunctionTable,
    LibraryFunction,
    TRUE,
    add,
    and_,
    arg,
    call,
    eq,
    ge,
    gt,
    le,
    lt,
    mul,
    ne,
    not_,
    or_,
    sub,
    var,
)
from repro.lang.ast import IntConst, Var
from repro.smt import Solver, TRUE_F


@pytest.fixture
def ft():
    return FunctionTable(
        [
            LibraryFunction("f", lambda x: x + 1, cost=50),
            LibraryFunction("g", lambda x: x * 2, cost=50),
        ]
    )


@pytest.fixture
def ctx(ft):
    return Context(engine=SpEngine(ft), solver=Solver())


class TestFold:
    def test_and_true(self):
        assert fold_expr(and_(TRUE, lt(var("x"), 1))) == lt(var("x"), 1)

    def test_and_false(self):
        assert fold_expr(and_(lt(var("x"), 1), FALSE)) == FALSE

    def test_or_true(self):
        assert fold_expr(or_(TRUE, lt(var("x"), 1))) == TRUE

    def test_or_false(self):
        assert fold_expr(or_(FALSE, lt(var("x"), 1))) == lt(var("x"), 1)

    def test_not_constants(self):
        assert fold_expr(not_(TRUE)) == FALSE
        assert fold_expr(not_(not_(lt(var("x"), 1)))) == lt(var("x"), 1)

    def test_arith_constants(self):
        assert fold_expr(add(2, 3)) == IntConst(5)
        assert fold_expr(mul(var("x"), 0)) == IntConst(0)
        assert fold_expr(add(var("x"), 0)) == var("x")
        assert fold_expr(mul(1, var("x"))) == var("x")

    def test_cmp_constants(self):
        assert fold_expr(lt(2, 3)) == TRUE
        assert fold_expr(eq(2, 3)) == FALSE
        assert fold_expr(le(var("x"), var("x"))) == TRUE

    def test_string_equality(self):
        assert fold_expr(eq("a", "a")) == TRUE
        assert fold_expr(eq("a", "b")) == FALSE


class TestIrLinear:
    def test_roundtrip(self):
        e = add(sub(mul(3, var("x")), var("y")), 7)
        decomposition = ir_linear(e)
        assert decomposition is not None
        const, coeffs = decomposition
        assert const == 7
        assert coeffs == {var("x"): 3, var("y"): -1}
        rebuilt = ir_from_linear(const, coeffs)
        assert ir_linear(rebuilt) == (const, coeffs)

    def test_calls_are_atoms(self):
        e = sub(call("f", arg("a")), 1)
        const, coeffs = ir_linear(e)
        assert const == -1
        assert coeffs == {call("f", arg("a")): 1}

    def test_nonlinear_rejected(self):
        assert ir_linear(mul(var("x"), var("y"))) is None

    def test_cancellation(self):
        e = sub(add(var("x"), var("y")), var("x"))
        assert ir_linear(e) == (0, {var("y"): 1})


class TestIntSimplification:
    def test_memoized_call_rewrites_to_var(self, ctx):
        ctx.record_assign("x", call("f", arg("a")))
        assert ctx.simplify_int(call("f", arg("a"))) == var("x")

    def test_linear_offset_rewrite(self, ctx):
        """The paper's Figure 4: x = f(a)+1 makes f(a)-1 rewrite to x-2."""

        ctx.record_assign("x", add(call("f", arg("a")), 1))
        result = ctx.simplify_int(sub(call("f", arg("a")), 1))
        assert ir_linear(result) == (-2, {var("x"): 1})

    def test_reassignment_invalidates(self, ctx):
        ctx.record_assign("x", call("f", arg("a")))
        ctx.record_assign("x", IntConst(0))
        result = ctx.simplify_int(call("f", arg("a")))
        assert result == call("f", arg("a"))

    def test_different_call_not_rewritten(self, ctx):
        ctx.record_assign("x", call("f", arg("a")))
        assert ctx.simplify_int(call("g", arg("a"))) == call("g", arg("a"))

    def test_semantically_equal_args_shared(self, ctx):
        """f(i) cached; f(j) rewrites when the context proves j = i."""

        ctx.record_assign("i", arg("a"))
        ctx.record_assign("t", call("f", var("i")))
        ctx.record_assign("j", arg("a"))
        assert ctx.simplify_int(call("f", var("j"))) == var("t")

    def test_constant_propagation_through_var(self, ctx):
        ctx.record_assign("k", IntConst(5))
        result = ctx.simplify_int(add(var("k"), 1))
        assert result == IntConst(6)

    def test_no_rewrite_without_smt(self, ft):
        ctx = Context(engine=SpEngine(ft), solver=Solver(), use_smt=False)
        ctx.record_assign("i", arg("a"))
        ctx.record_assign("t", call("f", var("i")))
        ctx.record_assign("j", arg("a"))
        # Syntactic-only mode still handles the identical call...
        assert ctx.simplify_int(call("f", var("i"))) == var("t")
        # ...but not the semantic one.
        assert ctx.simplify_int(call("f", var("j"))) == call("f", var("j"))


class TestBoolSimplification:
    def test_bool1_entailed_true(self, ctx):
        ctx.psi = ctx.assume(lt(arg("a"), 5))
        assert ctx.simplify_bool(lt(arg("a"), 10)) == TRUE

    def test_bool2_entailed_false(self, ctx):
        ctx.psi = ctx.assume(lt(arg("a"), 5))
        assert ctx.simplify_bool(ge(arg("a"), 10)) == FALSE

    def test_bool3_operand_simplification(self, ctx):
        ctx.record_assign("x", call("f", arg("a")))
        result = ctx.simplify_bool(lt(call("f", arg("a")), 10))
        assert result == lt(var("x"), 10)

    def test_bool4_connective_folding(self, ctx):
        ctx.psi = ctx.assume(lt(arg("a"), 5))
        result = ctx.simplify_bool(and_(lt(arg("a"), 10), lt(arg("b"), 3)))
        assert result == lt(arg("b"), 3)

    def test_bool5_negation(self, ctx):
        ctx.psi = ctx.assume(lt(arg("a"), 5))
        assert ctx.simplify_bool(not_(lt(arg("a"), 10))) == FALSE

    def test_paper_example_3(self, ctx):
        """Ψ: a1 > 0, x = f(a2), y = a1 simplifies (y>=0 ∧ f(a2)!=0) to x!=0."""

        ctx.psi = ctx.assume(gt(arg("a1"), 0))
        ctx.record_assign("x", call("f", arg("a2")))
        ctx.record_assign("y", arg("a1"))
        result = ctx.simplify_bool(and_(ge(var("y"), 0), ne(call("f", arg("a2")), 0)))
        assert result == ne(var("x"), 0)

    def test_boolean_memoisation(self, ctx):
        ctx.record_assign("b", lt(arg("a"), 5))
        assert ctx.simplify_bool(lt(arg("a"), 5)) == var("b")

    def test_undecided_left_alone(self, ctx):
        e = lt(arg("a"), 10)
        assert ctx.simplify_bool(e) == e


class TestCostGuarantee:
    def test_never_more_expensive(self, ctx):
        """Every simplification must respect cost(e') <= cost(e)."""

        ctx.record_assign("x", add(call("f", arg("a")), 1))
        ctx.psi = ctx.assume(lt(arg("a"), 5))
        exprs = [
            sub(call("f", arg("a")), 1),
            and_(lt(arg("a"), 10), lt(call("f", arg("a")), 3)),
            mul(call("g", arg("a")), 1),
            not_(ge(arg("a"), 10)),
        ]
        for e in exprs:
            simplified = ctx.simplify_for_sort(e)
            assert ctx.cost(simplified) <= ctx.cost(e)
