"""Tests for strongest postconditions, including the soundness property:
if E |= Ψ and E,S ⇓ E', then E' |= sp(Ψ, S).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import SpEngine
from repro.lang import (
    FunctionTable,
    Interpreter,
    LibraryFunction,
    add,
    arg,
    assign,
    block,
    call,
    eq,
    ge,
    gt,
    if_,
    le,
    lt,
    mul,
    sub,
    var,
    while_,
)
from repro.smt import (
    Eq,
    FAnd,
    FNot,
    FOr,
    FFalse,
    FTrue,
    Le,
    Lin,
    Num,
    Solver,
    Sym,
    TRUE_F,
    eq_f,
    fand,
    le_f,
    lt_f,
)
from repro.smt.interface import arg_sym, var_sym
from repro.smt.terms import App, Term


@pytest.fixture
def ft():
    return FunctionTable([LibraryFunction("f", lambda x: x * x - 3, cost=25)])


@pytest.fixture
def engine(ft):
    return SpEngine(ft)


@pytest.fixture
def solver():
    return Solver()


class TestAssign:
    def test_simple_equality_recorded(self, engine, solver):
        psi = engine.assign(TRUE_F, "x", add(arg("a"), 1))
        assert solver.entails(psi, eq_f(var_sym("x"), Sym("a!a"))) is False
        from repro.smt.terms import t_add
        assert solver.entails(psi, eq_f(var_sym("x"), t_add(Sym("a!a"), Num(1))))

    def test_old_value_renamed(self, engine, solver):
        psi = engine.assign(TRUE_F, "x", add(arg("a"), 0))
        psi = engine.assign(psi, "x", add(var("x"), 1))
        # Now x = a + 1; the old x = a fact must not clash.
        from repro.smt.terms import t_add
        assert solver.entails(psi, eq_f(var_sym("x"), t_add(Sym("a!a"), Num(1))))

    def test_self_reference_uses_old_value(self, engine, solver):
        psi = fand(eq_f(var_sym("x"), Num(5)))
        psi = engine.assign(psi, "x", mul(var("x"), 2))
        assert solver.entails(psi, eq_f(var_sym("x"), Num(10)))

    def test_call_produces_uninterpreted_equality(self, engine, solver):
        psi = engine.assign(TRUE_F, "y", call("f", arg("a")))
        assert solver.entails(psi, eq_f(var_sym("y"), App("f", (Sym("a!a"),))))

    def test_boolean_assignment_iff(self, engine, solver):
        psi = engine.assign(TRUE_F, "b", lt(arg("a"), 5))
        # b = 1 <-> a < 5 ; so b = 1 and a >= 5 is inconsistent.
        bad = fand(psi, eq_f(var_sym("b"), Num(1)), le_f(Num(5), Sym("a!a")))
        assert solver.is_sat(bad) == "unsat"


class TestControlFlow:
    def test_if_disjunction(self, engine, solver):
        s = if_(lt(arg("a"), 0), assign("x", 0), assign("x", 1))
        psi = engine.post(TRUE_F, s)
        # x is 0 or 1 in every post-state.
        assert solver.entails(psi, fand(le_f(Num(0), var_sym("x")), le_f(var_sym("x"), Num(1))))

    def test_while_negated_condition(self, engine, solver):
        s = while_(lt(var("i"), 10), assign("i", add(var("i"), 1)))
        psi = engine.post(eq_f(var_sym("i"), Num(0)), s)
        assert solver.entails(psi, le_f(Num(10), var_sym("i")))

    def test_while_havocs_body_vars(self, engine, solver):
        s = while_(lt(var("i"), 10), assign("i", add(var("i"), 1)))
        psi = engine.post(eq_f(var_sym("i"), Num(0)), s)
        # The entry fact i = 0 must be gone.
        assert not solver.entails(psi, eq_f(var_sym("i"), Num(0)))

    def test_notify_is_identity(self, engine, solver):
        from repro.lang import notify

        psi = eq_f(var_sym("x"), Num(3))
        assert engine.post(psi, notify("q", lt(var("x"), 5))) == psi

    def test_unencodable_assign_havocs(self, engine, solver):
        # A call with a boolean argument is outside the fragment.
        from repro.lang.ast import Call
        from repro.lang import lt as lt_ir

        weird = Call("f", (lt_ir(arg("a"), 1),))
        psi = eq_f(var_sym("x"), Num(3))
        post = engine.assign(psi, "x", weird)
        assert not solver.entails(post, eq_f(var_sym("x"), Num(3)))


# -- dynamic soundness property ------------------------------------------------


def _eval_term_concrete(t: Term, env, fns) -> int:
    if isinstance(t, Num):
        return t.value
    if isinstance(t, Sym):
        kind, name = t.name.split("!", 1)
        base = name.split("#", 1)[0]
        if t.name in env:
            return env[t.name]
        raise KeyError(t.name)
    if isinstance(t, App):
        args = [_eval_term_concrete(a, env, fns) for a in t.args]
        return fns[t.func].fn(*args)
    if isinstance(t, Lin):
        return t.const + sum(
            c * _eval_term_concrete(a, env, fns) for a, c in t.coeffs
        )
    raise AssertionError(t)


def _holds(f, env, fns) -> bool:
    if isinstance(f, FTrue):
        return True
    if isinstance(f, FFalse):
        return False
    if isinstance(f, FAnd):
        return all(_holds(g, env, fns) for g in f.args)
    if isinstance(f, FOr):
        return any(_holds(g, env, fns) for g in f.args)
    if isinstance(f, FNot):
        return not _holds(f.operand, env, fns)
    try:
        value = _eval_term_concrete(f.term, env, fns)
    except KeyError:
        return True  # havocked symbol: any value allowed; treat as satisfied
    if isinstance(f, Le):
        return value <= 0
    if isinstance(f, Eq):
        return value == 0
    raise AssertionError(f)


@given(st.integers(-5, 5), st.integers(0, 4))
@settings(max_examples=60, deadline=None)
def test_sp_soundness_on_loop_program(a0, n):
    """Run a program concretely; the final env must satisfy sp."""

    ft = FunctionTable([LibraryFunction("f", lambda x: 2 * x + 1, cost=10)])
    engine = SpEngine(ft)
    prog_body = block(
        assign("i", 0),
        assign("acc", arg("a")),
        while_(
            lt(var("i"), n),
            block(
                assign("acc", add(var("acc"), call("f", var("i")))),
                assign("i", add(var("i"), 1)),
            ),
        ),
        if_(gt(var("acc"), 0), assign("sign", 1), assign("sign", 0)),
    )
    interp = Interpreter(ft)
    from repro.lang import Program

    result = interp.run(Program("p", ("a",), prog_body), {"a": a0})
    psi = engine.post(TRUE_F, prog_body)

    env = {f"v!{k}": v for k, v in result.env.items() if k != "a"}
    env["a!a"] = a0
    # Fresh (renamed) symbols are havocked — _holds treats them as free.
    assert _holds(psi, env, {f.name: f for f in ft})
