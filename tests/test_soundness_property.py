"""Property-based test of Theorem 1 on randomly generated programs.

For arbitrary pairs of well-formed UDF programs over the same input and
arbitrary inputs, the consolidated program must broadcast identical
notifications at a cost no greater than sequential execution — across all
rule-selection modes.  This is the executable form of the paper's
soundness theorem and the strongest single check in the suite.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.consolidation import ConsolidationOptions, Consolidator, check_soundness
from repro.lang import (
    FunctionTable,
    LibraryFunction,
    Program,
    SKIP,
    add,
    and_,
    arg,
    assign,
    block,
    call,
    eq,
    ge,
    gt,
    if_,
    ite_notify,
    le,
    lt,
    mul,
    ne,
    not_,
    notify,
    or_,
    program,
    sub,
    var,
    while_,
)

FT = FunctionTable(
    [
        LibraryFunction("f", lambda x: (x * 3 + 1) % 17 - 8, cost=40),
        LibraryFunction("g", lambda x: (x * x) % 23 - 11, cost=40),
        LibraryFunction("h", lambda x, y: (x + 2 * y) % 13 - 6, cost=60),
    ]
)

_ARGS = ("a", "b")


from repro.lang import lift


@st.composite
def int_exprs(draw, names, depth=2):
    base = st.one_of(
        st.integers(-8, 8).map(lift),
        st.sampled_from([arg(n) for n in _ARGS]),
        *([st.sampled_from([var(n) for n in sorted(names)])] if names else []),
    )
    if depth <= 0:
        return draw(base)
    choice = draw(st.integers(0, 5))
    if choice <= 2:
        return draw(base)
    if choice == 3:
        op = draw(st.sampled_from([add, sub, mul]))
        return op(draw(int_exprs(names, depth - 1)), draw(int_exprs(names, depth - 1)))
    if choice == 4:
        fn = draw(st.sampled_from(["f", "g"]))
        return call(fn, draw(int_exprs(names, depth - 1)))
    return call("h", draw(int_exprs(names, depth - 1)), draw(int_exprs(names, depth - 1)))


@st.composite
def bool_exprs(draw, names, depth=2):
    cmp = draw(st.sampled_from([lt, le, gt, ge, eq, ne]))
    base = cmp(draw(int_exprs(names, 1)), draw(int_exprs(names, 1)))
    if depth <= 0:
        return base
    choice = draw(st.integers(0, 4))
    if choice <= 1:
        return base
    if choice == 2:
        return not_(draw(bool_exprs(names, depth - 1)))
    op = and_ if choice == 3 else or_
    return op(draw(bool_exprs(names, depth - 1)), draw(bool_exprs(names, depth - 1)))


@st.composite
def stmt_lists(draw, pid, names, depth=2, allow_loop=True):
    """A statement list assigning only fresh names (single-assignment-ish)."""

    stmts = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.integers(0, 5 if (depth > 0) else 3))
        if kind <= 2:
            name = f"{pid}v{len(names)}"
            sort_is_bool = draw(st.booleans())
            value = draw(bool_exprs(names, 1)) if sort_is_bool else draw(int_exprs(names, 2))
            stmts.append(assign(name, value))
            names = names | {name} if not sort_is_bool else names
        elif kind == 3 and depth > 0:
            cond = draw(bool_exprs(names, 1))
            then = draw(stmt_lists(pid, names, depth - 1, allow_loop=False))
            orelse = draw(stmt_lists(pid, names, depth - 1, allow_loop=False))
            stmts.append(if_(cond, then, orelse))
        elif kind >= 4 and depth > 0 and allow_loop:
            counter = f"{pid}i{len(names)}"
            bound = draw(st.integers(1, 6))
            body_names = names | {counter}
            acc = f"{pid}s{len(names)}"
            stmts.append(assign(counter, 0))
            stmts.append(assign(acc, 0))
            stmts.append(
                while_(
                    lt(var(counter), bound),
                    block(
                        assign(acc, add(var(acc), draw(int_exprs(body_names, 1)))),
                        assign(counter, add(var(counter), 1)),
                    ),
                )
            )
            names = names | {counter, acc}
    return block(*stmts)


@st.composite
def udf_programs(draw, pid):
    names = frozenset()
    prologue = draw(stmt_lists(pid, names, depth=2))
    from repro.lang.visitors import assigned_vars
    from repro.lang.functions import BOOL
    final_names = frozenset(
        n for n in assigned_vars(prologue)
    )
    # Build the final predicate over ints only (bool vars excluded by
    # generating from int-assigned names; the generator may still produce a
    # name bound to a bool — the type checker in the engine tolerates it in
    # comparisons' place only if int, so restrict to arguments to be safe).
    predicate = draw(bool_exprs(frozenset(), 2))
    return program(pid, _ARGS, prologue, ite_notify(pid, predicate))


@pytest.mark.parametrize("mode", ["heuristic", "always_if3", "always_if5"])
def test_modes_smoke(mode):
    """Deterministic smoke for each mode before the property run."""

    p1 = program("x1", _ARGS, assign("u", call("f", arg("a"))), ite_notify("x1", lt(var("u"), 0)))
    p2 = program("x2", _ARGS, ite_notify("x2", lt(call("f", arg("a")), 4)))
    options = ConsolidationOptions(if_rule_mode=mode)
    merged = Consolidator(FT, options=options).consolidate(p1, p2)
    inputs = [{"a": i, "b": j} for i in range(-3, 4) for j in (-1, 2)]
    report = check_soundness([p1, p2], merged, FT, inputs)
    assert report.ok, report.violations


@pytest.mark.slow
@given(udf_programs("q1"), udf_programs("q2"), st.lists(st.tuples(st.integers(-6, 6), st.integers(-6, 6)), min_size=3, max_size=6))
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_consolidation_sound_on_random_programs(p1, p2, points):
    merged = Consolidator(FT).consolidate(p1, p2)
    inputs = [{"a": a, "b": b} for a, b in points]
    report = check_soundness([p1, p2], merged, FT, inputs)
    assert report.ok, report.violations


@given(udf_programs("q1"), udf_programs("q2"), st.lists(st.tuples(st.integers(-6, 6), st.integers(-6, 6)), min_size=2, max_size=4))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_consolidation_sound_without_smt(p1, p2, points):
    options = ConsolidationOptions(use_smt=False)
    merged = Consolidator(FT, options=options).consolidate(p1, p2)
    inputs = [{"a": a, "b": b} for a, b in points]
    report = check_soundness([p1, p2], merged, FT, inputs)
    assert report.ok, report.violations


@pytest.mark.slow
@given(udf_programs("q1"), udf_programs("q2"), st.lists(st.tuples(st.integers(-6, 6), st.integers(-6, 6)), min_size=2, max_size=4))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_consolidation_sound_if3_mode(p1, p2, points):
    options = ConsolidationOptions(if_rule_mode="always_if3")
    merged = Consolidator(FT, options=options).consolidate(p1, p2)
    inputs = [{"a": a, "b": b} for a, b in points]
    report = check_soundness([p1, p2], merged, FT, inputs)
    assert report.ok, report.violations


@given(st.data())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_three_way_consolidation_sound(data):
    """Divide-and-conquer over three programs stays sound."""

    from repro.consolidation import consolidate_all

    ps = [data.draw(udf_programs(f"q{i}")) for i in range(3)]
    report = consolidate_all(ps, FT)
    inputs = [{"a": a, "b": 1} for a in range(-3, 4)]
    sound = check_soundness(ps, report.program, FT, inputs)
    assert sound.ok, sound.violations
