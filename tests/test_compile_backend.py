"""Tests for backend selection, the compile cache, and fallback behaviour."""

import logging

import pytest

from repro.lang import (
    CompileError,
    FunctionTable,
    LibraryFunction,
    arg,
    assign,
    call,
    compile_cached,
    compile_program,
    ite_notify,
    lift,
    lt,
    make_runner,
    program,
    var,
)
from repro.lang.compile import clear_compile_cache
from repro.naiad.linq import run_where_consolidated, run_where_many

FT = FunctionTable([LibraryFunction("val", lambda r: (r * 13) % 50, cost=15)])


def filt(pid, bound):
    return program(
        pid,
        ("row",),
        assign("x", call("val", arg("row"))),
        ite_notify(pid, lt(var("x"), bound)),
    )


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_runner(filt("q0", 10), FT, backend="jit")

    def test_both_backends_agree(self):
        p = filt("q0", 10)
        interp_run = make_runner(p, FT, backend="interp")
        compiled_run = make_runner(p, FT, backend="compiled")
        for row in range(20):
            a = interp_run({"row": row})
            b = compiled_run({"row": row})
            assert (a.env, a.notifications, a.cost, a.notification_costs) == (
                b.env,
                b.notifications,
                b.cost,
                b.notification_costs,
            )

    def test_unknown_function_raises_compile_error(self):
        p = program("q0", ("row",), assign("x", call("nosuch", arg("row"))))
        with pytest.raises(CompileError, match="unknown library function"):
            compile_program(p, FT)

    def test_fallback_to_interpreter_is_logged(self, caplog):
        # An unknown function cannot be compiled; make_runner must fall back
        # (and warn) rather than raise — the interpreter reproduces the
        # dynamic error lazily, only if the call site is ever reached.
        p = program(
            "q0",
            ("row",),
            ite_notify("q0", lt(arg("row"), lift(3))),
            assign("x", call("nosuch", arg("row"))),
        )
        with caplog.at_level(logging.WARNING, logger="repro.lang.compile"):
            runner = make_runner(p, FT, backend="compiled")
        assert any("falling back to the interpreter" in r.message for r in caplog.records)
        with pytest.raises(Exception, match="nosuch"):
            runner({"row": 0})


class TestCompileCache:
    def test_cache_returns_identical_object(self):
        clear_compile_cache()
        p = filt("q0", 10)
        first = compile_cached(p, FT)
        second = compile_cached(p, FT)
        assert first is second

    def test_structurally_equal_programs_share_one_compilation(self):
        clear_compile_cache()
        assert compile_cached(filt("q0", 10), FT) is compile_cached(filt("q0", 10), FT)

    def test_cache_discriminates_programs_and_options(self):
        clear_compile_cache()
        base = compile_cached(filt("q0", 10), FT)
        assert compile_cached(filt("q0", 11), FT) is not base
        assert compile_cached(filt("q1", 10), FT) is not base
        assert compile_cached(filt("q0", 10), FT, memoize_calls=True) is not base

    def test_cache_discriminates_function_tables(self):
        clear_compile_cache()
        other = FunctionTable([LibraryFunction("val", lambda r: r, cost=15)])
        p = filt("q0", 10)
        assert compile_cached(p, FT) is not compile_cached(p, other)


class TestOperatorsUnderBothBackends:
    def test_where_many_buckets_and_costs_match(self):
        rows = list(range(30))
        programs = [filt(f"q{i}", 5 * i + 3) for i in range(4)]
        interp = run_where_many(rows, programs, FT, backend="interp")
        compiled = run_where_many(rows, programs, FT, backend="compiled")
        assert interp.buckets == compiled.buckets
        assert interp.metrics.udf_cost == compiled.metrics.udf_cost
        assert interp.metrics.total_cost == compiled.metrics.total_cost

    def test_where_consolidated_buckets_and_costs_match(self):
        rows = list(range(30))
        programs = [filt(f"q{i}", 5 * i + 3) for i in range(4)]
        interp, _ = run_where_consolidated(rows, programs, FT, backend="interp")
        compiled, _ = run_where_consolidated(rows, programs, FT, backend="compiled")
        assert interp.buckets == compiled.buckets
        assert interp.metrics.udf_cost == compiled.metrics.udf_cost


class TestCliBackendFlag:
    @pytest.fixture
    def program_file(self, tmp_path):
        src = "program p(n) { notify p @n < 5; }"
        path = tmp_path / "p.prog"
        path.write_text(src)
        return str(path)

    def test_run_under_each_backend(self, capsys, program_file):
        from repro.cli import main

        outputs = []
        for backend in ("interp", "compiled"):
            assert main(["--backend", backend, "run", program_file, "--args", "n=3"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "p: true" in outputs[0]

    def test_backend_flag_rejects_unknown_value(self, program_file):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--backend", "jit", "run", program_file, "--args", "n=3"])
