"""Tests for the DPLL(T) solver facade.

The key property (which consolidation soundness rests on): whenever a
brute-force search finds an integer model of a formula, the solver must not
declare it unsatisfiable.  Completeness is exercised on curated instances.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt import (
    FALSE_F,
    FAnd,
    FNot,
    FOr,
    Eq,
    Le,
    Lin,
    Num,
    Solver,
    Sym,
    TRUE_F,
    app,
    eq_f,
    fand,
    fiff,
    fimplies,
    fnot,
    for_,
    le_f,
    lt_f,
    ne_f,
    num,
    sym,
    t_add,
    t_scale,
    t_sub,
)

x, y, z = sym("x"), sym("y"), sym("z")


def fresh_solver():
    return Solver()


class TestPureArithmetic:
    def test_valid_transitivity(self):
        s = fresh_solver()
        assert s.is_valid(fimplies(fand(le_f(x, y), le_f(y, z)), le_f(x, z)))

    def test_invalid_converse(self):
        s = fresh_solver()
        assert not s.is_valid(fimplies(le_f(x, z), le_f(x, y)))

    def test_case_split_validity(self):
        # (x <= 5) or (x >= 3) is valid over the integers
        s = fresh_solver()
        assert s.is_valid(for_(le_f(x, num(5)), le_f(num(3), x)))

    def test_trichotomy(self):
        s = fresh_solver()
        f = for_(lt_f(x, y), eq_f(x, y), lt_f(y, x))
        assert s.is_valid(f)

    def test_parity_style_gap(self):
        # x >= 1 and x <= 2 and x != 1 entails x = 2
        s = fresh_solver()
        hyp = fand(le_f(num(1), x), le_f(x, num(2)), ne_f(x, num(1)))
        assert s.entails(hyp, eq_f(x, num(2)))

    def test_contradictory_hypothesis_entails_anything(self):
        s = fresh_solver()
        hyp = fand(lt_f(x, y), lt_f(y, x))
        assert s.entails(hyp, eq_f(x, num(42)))

    def test_false_formula(self):
        s = fresh_solver()
        assert s.is_sat(FALSE_F) == "unsat"
        assert s.is_sat(TRUE_F) == "sat"


class TestEufCombination:
    def test_congruence_entailment(self):
        s = fresh_solver()
        assert s.entails(eq_f(x, y), eq_f(app("f", x), app("f", y)))

    def test_congruence_not_injective(self):
        s = fresh_solver()
        assert not s.entails(eq_f(app("f", x), app("f", y)), eq_f(x, y))

    def test_bounds_merge_then_congruence(self):
        # x <= y, y <= x  |=  g(x, z) = g(y, z)
        s = fresh_solver()
        hyp = fand(le_f(x, y), le_f(y, x))
        assert s.entails(hyp, eq_f(app("g", x, z), app("g", y, z)))

    def test_function_result_arithmetic(self):
        # a = f(x), b = f(x) + 1  |=  b - a = 1
        s = fresh_solver()
        a, b = sym("a"), sym("b")
        hyp = fand(eq_f(a, app("f", x)), eq_f(b, t_add(app("f", x), num(1))))
        assert s.entails(hyp, eq_f(t_sub(b, a), num(1)))

    def test_paper_example_3(self):
        # Psi: a1 > 0, xx = f(a2), yy = a1  entails  yy >= 0 and f(a2) = xx
        s = fresh_solver()
        a1, a2, xx, yy = sym("a1"), sym("a2"), sym("xx"), sym("yy")
        psi = fand(lt_f(num(0), a1), eq_f(xx, app("f", a2)), eq_f(yy, a1))
        goal = fand(le_f(num(0), yy), eq_f(app("f", a2), xx))
        assert s.entails(psi, goal)

    def test_nested_congruence_through_arithmetic(self):
        # x = y + 1  |=  f(x) = f(y + 1)
        s = fresh_solver()
        hyp = eq_f(x, t_add(y, num(1)))
        assert s.entails(hyp, eq_f(app("f", x), app("f", t_add(y, num(1)))))

    def test_disequality_on_function_results(self):
        # f(x) = 1, f(y) = 2  |=  x != y
        s = fresh_solver()
        hyp = fand(eq_f(app("f", x), num(1)), eq_f(app("f", y), num(2)))
        assert s.entails(hyp, ne_f(x, y))


class TestMemoisation:
    def test_cache_hits_counted(self):
        s = fresh_solver()
        f = fimplies(le_f(x, y), le_f(x, t_add(y, num(1))))
        assert s.is_valid(f)
        before = s.stats.cache_hits
        assert s.is_valid(f)
        assert s.stats.cache_hits == before + 1


# -- property: never 'unsat' on a brute-force-satisfiable formula ------------

_VARS = [x, y, z]


@st.composite
def lia_formulas(draw, depth=2):
    def term():
        parts = draw(
            st.lists(
                st.tuples(st.sampled_from(_VARS), st.integers(-3, 3)),
                min_size=0,
                max_size=3,
            )
        )
        t = num(draw(st.integers(-4, 4)))
        for v, c in parts:
            t = t_add(t, t_scale(c, v))
        return t

    def atom():
        kind = draw(st.sampled_from(["le", "eq", "lt", "ne"]))
        a, b = term(), term()
        if kind == "le":
            return le_f(a, b)
        if kind == "lt":
            return lt_f(a, b)
        if kind == "eq":
            return eq_f(a, b)
        return ne_f(a, b)

    def formula(d):
        if d <= 0:
            return atom()
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return atom()
        if choice == 1:
            return fnot(formula(d - 1))
        if choice == 2:
            return fand(formula(d - 1), formula(d - 1))
        return for_(formula(d - 1), formula(d - 1))

    return formula(depth)


def _eval_term(t, env):
    if isinstance(t, Num):
        return t.value
    if isinstance(t, Sym):
        return env[t.name]
    if isinstance(t, Lin):
        return t.const + sum(c * _eval_term(a, env) for a, c in t.coeffs)
    raise AssertionError(f"unexpected term {t}")


def _eval_formula(f, env):
    if isinstance(f, FAnd):
        return all(_eval_formula(g, env) for g in f.args)
    if isinstance(f, FOr):
        return any(_eval_formula(g, env) for g in f.args)
    if isinstance(f, FNot):
        return not _eval_formula(f.operand, env)
    if isinstance(f, Le):
        return _eval_term(f.term, env) <= 0
    if isinstance(f, Eq):
        return _eval_term(f.term, env) == 0
    if f == TRUE_F:
        return True
    if f == FALSE_F:
        return False
    raise AssertionError(f"unexpected formula {f}")


@given(lia_formulas())
@settings(max_examples=150, deadline=None)
def test_never_unsat_when_model_exists(f):
    solver = Solver()
    verdict = solver.is_sat(f)
    found = any(
        _eval_formula(f, {"x": a, "y": b, "z": c})
        for a, b, c in itertools.product(range(-4, 5), repeat=3)
    )
    if found:
        assert verdict != "unsat"
    # And dually on this bounded grid: an 'unsat' verdict means no model.
    if verdict == "unsat":
        assert not found
