"""The HTTP transport: server routes, typed client, restart replay.

The promise under test: the wire changes *nothing*.  The client returns
typed result objects, raises the same exception classes (with the same
SARIF diagnostics) the in-process facade raises, and a server restarted
over its event log serves byte-identical plan fingerprints.  The stress
test hammers one server with concurrent register/unregister clients and
checks the registry never desynchronises from its merge tree.
"""

import threading

import pytest

from repro.config import ServiceConfig
from repro.datasets import generate_weather
from repro.lang.printer import program_to_str
from repro.queries import DOMAIN_QUERIES
from repro.service import (
    AdmissionError,
    Client,
    DuplicateQueryError,
    HealthInfo,
    PlanInfo,
    RegisterResult,
    RunInfo,
    ServiceError,
    UnknownQueryError,
    serve,
)


@pytest.fixture(scope="module")
def weather():
    return generate_weather(cities=20)


@pytest.fixture()
def server(weather):
    instance = serve(weather.functions, service=ServiceConfig(port=0))
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()


@pytest.fixture()
def client(server):
    return Client(port=server.port)


def weather_sources(dataset, n=4, family="Q1", seed=3):
    batch = DOMAIN_QUERIES["weather"].make_batch(dataset, family, n=n, seed=seed)
    return [program_to_str(p) for p in batch], [p.pid for p in batch]


# ---------------------------------------------------------------------------
# typed results


def test_health_and_register_return_typed_objects(client, weather):
    health = client.health()
    assert isinstance(health, HealthInfo)
    assert health.status == "ok"

    sources, pids = weather_sources(weather, n=2)
    result = client.register(sources[0], tenant="acme")
    assert isinstance(result, RegisterResult)
    assert result.query.pid == pids[0]
    assert result.query.tenant == "acme"
    assert len(result.query.fingerprint) == 16
    assert isinstance(result.plan, PlanInfo)
    assert result.plan.pids == (pids[0],)
    assert result.patch.action == "add"
    assert result.patch.pair_merges == 0  # first leaf needs no merge

    second = client.register(sources[1])
    assert second.patch.pair_merges == 1
    assert client.plan().queries == 2
    assert sorted(client.plan().pids) == sorted(pids[:2])


def test_run_returns_buckets_and_costs(client, weather):
    sources, pids = weather_sources(weather, n=3)
    for source in sources:
        client.register(source)
    result = client.run(list(weather.rows[:40]))
    assert isinstance(result, RunInfo)
    assert set(result.buckets) <= set(pids)
    assert result.udf_cost > 0
    assert result.total_cost >= result.udf_cost
    doc = client.explain()
    assert doc["queries"] == 3
    assert doc["last_patch"]["pair_merges"] == 1


def test_python_source_registration(client):
    result = client.register(
        "def notify(row):\n    return monthly_avg_temp(row, 2) > 60\n"
    )
    assert result.query.pid  # translated with a generated pid
    assert client.health().queries == 1


# ---------------------------------------------------------------------------
# exception mapping: same types as the in-process facade


def test_admission_error_crosses_the_wire_with_sarif(client):
    with pytest.raises(AdmissionError) as excinfo:
        client.register("program bad(row) { notify bad (mystery > 3); }")
    assert excinfo.value.code == "admission"
    sarif = excinfo.value.diagnostics
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["results"]


def test_duplicate_and_unknown_map_to_typed_errors(client, weather):
    sources, pids = weather_sources(weather, n=1)
    client.register(sources[0])
    with pytest.raises(DuplicateQueryError):
        client.register(sources[0])
    with pytest.raises(UnknownQueryError):
        client.unregister("ghost")
    # An empty registry has no plan: 404 maps to the same typed error.
    client.unregister(pids[0])
    with pytest.raises(UnknownQueryError):
        client.plan()


def test_unknown_route_and_bad_payload(client):
    with pytest.raises(ServiceError):
        client._request("GET", "/v9/nope")
    with pytest.raises(ServiceError, match="'program'"):
        client._request("POST", "/v1/queries", {"nope": 1})
    with pytest.raises(ServiceError, match="'rows'"):
        client._request("POST", "/v1/run", {})


def test_run_with_empty_registry_is_typed(client):
    with pytest.raises(ServiceError):
        client.run([1, 2, 3])


# ---------------------------------------------------------------------------
# restart replay


def test_restart_replays_event_log_to_identical_fingerprints(tmp_path, weather):
    log = tmp_path / "events.jsonl"
    service = ServiceConfig(port=0, event_log=str(log))
    sources, pids = weather_sources(weather, n=5, family="Q2")

    first = serve(weather.functions, service=service)
    thread = threading.Thread(target=first.serve_forever, daemon=True)
    thread.start()
    client = Client(port=first.port)
    fingerprints = {}
    for source in sources:
        result = client.register(source)
        fingerprints[result.query.pid] = result.query.fingerprint
    client.unregister(pids[2])
    del fingerprints[pids[2]]
    plan_before = client.plan()
    first.shutdown()
    first.server_close()

    second = serve(weather.functions, service=service)
    thread = threading.Thread(target=second.serve_forever, daemon=True)
    thread.start()
    try:
        revived = Client(port=second.port)
        assert revived.health().queries == 4
        assert {
            q.pid: q.fingerprint for q in revived.queries()
        } == fingerprints
        plan_after = revived.plan()
        assert plan_after.fingerprint == plan_before.fingerprint
        assert plan_after.pids == plan_before.pids
        assert plan_after.program == plan_before.program
    finally:
        second.shutdown()
        second.server_close()


# ---------------------------------------------------------------------------
# concurrent clients


def test_concurrent_clients_stress(server, weather):
    sources, pids = weather_sources(weather, n=12, family="Q2", seed=9)
    errors: list[BaseException] = []
    barrier = threading.Barrier(4)

    def churn(worker: int) -> None:
        try:
            barrier.wait()
            mine = range(worker * 3, worker * 3 + 3)
            client = Client(port=server.port)
            for index in mine:
                client.register(sources[index])
            client.unregister(pids[worker * 3])
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=churn, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    client = Client(port=server.port)
    assert client.health().queries == 8
    plan = client.plan()
    assert plan.queries == 8
    assert sorted(plan.pids) == sorted(
        pid for i, pid in enumerate(pids) if i % 3 != 0
    )
    result = client.run(list(weather.rows[:30]))
    assert set(result.buckets) <= set(plan.pids)
