"""Tests for the n-UDF driver and the experiment harnesses."""

import pytest

pytestmark = pytest.mark.slow

from repro.consolidation import ConsolidationOptions, check_soundness, consolidate_all
from repro.datasets import generate_news, generate_stocks
from repro.experiments import (
    SoundnessError,
    run_experiment,
    run_figure10,
    run_figure9,
    format_table,
    render_figure10,
    render_figure9,
)
from repro.lang import (
    FunctionTable,
    LibraryFunction,
    arg,
    assign,
    call,
    ite_notify,
    lt,
    program,
    var,
)
from repro.lang.visitors import notified_pids
from repro.queries import DOMAIN_QUERIES

FT = FunctionTable([LibraryFunction("val", lambda r: (r * 13) % 50, cost=15)])


def filt(pid, bound):
    return program(
        pid,
        ("row",),
        assign("x", call("val", arg("row"))),
        ite_notify(pid, lt(var("x"), bound)),
    )


class TestDivideConquer:
    def test_single_program_passthrough(self):
        report = consolidate_all([filt("q0", 10)], FT)
        assert report.pair_consolidations == 0
        assert notified_pids(report.program.body) == {"q0"}

    def test_tree_merges_all(self):
        programs = [filt(f"q{i}", 5 * i + 3) for i in range(7)]
        report = consolidate_all(programs, FT)
        assert notified_pids(report.program.body) == {f"q{i}" for i in range(7)}
        assert report.pair_consolidations == 6
        assert report.tree_depth == 3  # ceil(log2(7))

    def test_tree_result_sound(self):
        programs = [filt(f"q{i}", 5 * i + 3) for i in range(7)]
        report = consolidate_all(programs, FT)
        sound = check_soundness(
            programs, report.program, FT, [{"row": r} for r in range(25)]
        )
        assert sound.ok, sound.violations

    def test_fold_order_sound(self):
        programs = [filt(f"q{i}", 5 * i + 3) for i in range(5)]
        report = consolidate_all(programs, FT, order="fold")
        assert report.tree_depth == 4
        sound = check_soundness(
            programs, report.program, FT, [{"row": r} for r in range(25)]
        )
        assert sound.ok

    def test_parallel_matches_serial(self):
        programs = [filt(f"q{i}", 5 * i + 3) for i in range(6)]
        serial = consolidate_all(programs, FT, parallel=False)
        parallel = consolidate_all(programs, FT, parallel=True, max_workers=3)
        assert serial.program == parallel.program
        assert serial.pair_consolidations == parallel.pair_consolidations == 5
        assert serial.tree_depth == parallel.tree_depth

    def test_report_records_pool_configuration(self):
        programs = [filt(f"q{i}", 5 * i + 3) for i in range(4)]
        serial = consolidate_all(programs, FT, parallel=False, max_workers=8)
        assert (serial.parallel, serial.max_workers) == (False, 1)
        parallel = consolidate_all(programs, FT, parallel=True, max_workers=2)
        assert (parallel.parallel, parallel.max_workers) == (True, 2)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            consolidate_all([], FT)

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            consolidate_all([filt("q0", 5)], FT, order="zigzag")


class TestHarness:
    @pytest.fixture(scope="class")
    def news(self):
        return generate_news(articles=60)

    def test_experiment_runs_and_reports(self, news):
        batch = DOMAIN_QUERIES["news"].make_batch(news, "Q2", n=5, seed=2)
        result = run_experiment(news, batch, family="Q2")
        assert result.udf_speedup >= 1.0
        assert result.total_speedup >= 1.0
        assert result.rows == 60
        row = result.row()
        assert row["domain"] == "news" and row["family"] == "Q2"

    def test_udf_speedup_at_least_total(self, news):
        """IO dilutes the total speedup relative to the UDF speedup."""

        batch = DOMAIN_QUERIES["news"].make_batch(news, "Q2", n=6, seed=2)
        result = run_experiment(news, batch)
        assert result.udf_speedup >= result.total_speedup

    def test_row_limit(self, news):
        batch = DOMAIN_QUERIES["news"].make_batch(news, "Q2", n=3, seed=2)
        result = run_experiment(news, batch, row_limit=10)
        assert result.rows == 10


class TestFigureHarnesses:
    def test_figure9_small(self):
        report = run_figure9(n_udfs=4, scale=0.003, seed=2, domains=["stock"])
        assert len(report.results) == len(DOMAIN_QUERIES["stock"].FAMILY_NAMES)
        agg = report.aggregates()
        assert agg["udf_min"] >= 1.0
        text = render_figure9(report)
        assert "stock" in text and "paper" in text

    def test_figure10_small(self):
        report = run_figure10(sweep=(2, 4), articles=40, seed=2)
        assert [p.n_udfs for p in report.points] == [2, 4]
        growth = report.growth_ratios()
        assert growth["many_total_growth"] > growth["cons_total_growth"]
        text = render_figure10(report)
        assert "whereMany_total" in text

    def test_format_table(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert len(lines) == 4
