"""Tests for the CDCL SAT core."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt.sat import SatSolver


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {v + 1: bits[v] for v in range(num_vars)}
        if all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses):
            return True
    return False


class TestBasics:
    def test_empty_instance_sat(self):
        assert SatSolver().solve().is_sat

    def test_unit_propagation(self):
        s = SatSolver()
        s.add_clause([1])
        s.add_clause([-1, 2])
        r = s.solve()
        assert r.is_sat
        assert r.model[1] is True and r.model[2] is True

    def test_contradictory_units(self):
        s = SatSolver()
        s.add_clause([1])
        s.add_clause([-1])
        assert s.solve().is_unsat

    def test_empty_clause_unsat(self):
        s = SatSolver()
        s.add_clause([])
        assert s.solve().is_unsat

    def test_tautology_dropped(self):
        s = SatSolver()
        s.add_clause([1, -1])
        assert s.solve().is_sat

    def test_simple_backtracking(self):
        s = SatSolver()
        s.add_clause([1, 2])
        s.add_clause([-1, 2])
        s.add_clause([1, -2])
        r = s.solve()
        assert r.is_sat
        assert r.model[1] is True and r.model[2] is True

    def test_xor_chain_unsat(self):
        # (a xor b), (b xor c), (a xor c) is unsat for odd cycles
        s = SatSolver()
        for a, b in [(1, 2), (2, 3), (1, 3)]:
            s.add_clause([a, b])
            s.add_clause([-a, -b])
        assert s.solve().is_unsat

    def test_assumptions_sat_then_unsat(self):
        s = SatSolver()
        s.add_clause([-1, 2])
        assert s.solve(assumptions=[1]).is_sat
        s.reset_to_root()
        s.add_clause([-2])
        assert s.solve(assumptions=[1]).is_unsat
        # Without the assumption the instance stays satisfiable.
        assert s.solve().is_sat

    def test_incremental_clause_addition(self):
        s = SatSolver()
        s.add_clause([1, 2, 3])
        assert s.solve().is_sat
        s.reset_to_root()
        s.add_clause([-1])
        s.add_clause([-2])
        r = s.solve()
        assert r.is_sat and r.model[3] is True


class TestPigeonhole:
    def _php(self, holes):
        """holes+1 pigeons into `holes` holes: classic small UNSAT family."""

        pigeons = holes + 1
        s = SatSolver()
        def v(p, h):
            return p * holes + h + 1
        for p in range(pigeons):
            s.add_clause([v(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-v(p1, h), -v(p2, h)])
        return s

    def test_php_3(self):
        assert self._php(3).solve().is_unsat

    def test_php_4(self):
        assert self._php(4).solve().is_unsat


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(1, 8))
    num_clauses = draw(st.integers(1, 30))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(1, 4))
        clause = [
            draw(st.integers(1, num_vars)) * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(clause)
    return num_vars, clauses


@given(random_cnf())
@settings(max_examples=300, deadline=None)
def test_agrees_with_brute_force(instance):
    num_vars, clauses = instance
    s = SatSolver()
    for c in clauses:
        s.add_clause(list(c))
    result = s.solve()
    expected = brute_force_sat(num_vars, clauses)
    assert result.status == ("sat" if expected else "unsat")
    if result.is_sat:
        model = {v: result.model.get(v, False) for v in range(1, num_vars + 1)}
        assert all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses)
