"""Tests for the dynamic Theorem 1 checker itself."""

from repro.consolidation import check_soundness
from repro.lang import (
    FunctionTable,
    LibraryFunction,
    arg,
    assign,
    call,
    ite_notify,
    lt,
    notify,
    program,
    var,
)

FT = FunctionTable([LibraryFunction("val", lambda r: (r * 13) % 50, cost=15)])


def filt(pid, bound):
    return program(
        pid,
        ("row",),
        assign("x", call("val", arg("row"))),
        ite_notify(pid, lt(var("x"), bound)),
    )


class TestDetection:
    def test_accepts_genuinely_equivalent(self):
        p1, p2 = filt("a", 10), filt("b", 30)
        # A hand-built correct consolidation: run p1's body then p2's.
        from repro.lang import block, Program
        from repro.lang.visitors import rename_locals

        q1, q2 = rename_locals(p1), rename_locals(p2)
        merged = Program("m", ("row",), block(q1.body, q2.body))
        report = check_soundness([p1, p2], merged, FT, [{"row": r} for r in range(20)])
        assert report.ok
        assert report.speedup == 1.0  # no optimisation, identical cost

    def test_detects_wrong_notification(self):
        p1 = filt("a", 10)
        # "Consolidation" that inverts the answer.
        wrong = program(
            "m",
            ("row",),
            assign("x", call("val", arg("row"))),
            ite_notify("a", lt(var("x"), 9999)),
        )
        report = check_soundness([p1], wrong, FT, [{"row": r} for r in range(20)])
        assert not report.ok
        assert any(v.kind == "notifications" for v in report.violations)

    def test_detects_cost_regression(self):
        p1 = filt("a", 10)
        # Same answers but the call is made twice: costlier than sequential.
        from repro.lang import block

        costly = program(
            "m",
            ("row",),
            assign("x", call("val", arg("row"))),
            assign("y", call("val", arg("row"))),
            ite_notify("a", lt(var("x"), 10)),
        )
        report = check_soundness([p1], costly, FT, [{"row": r} for r in range(5)])
        assert not report.ok
        assert any(v.kind == "cost" for v in report.violations)

    def test_detects_missing_notification(self):
        p1, p2 = filt("a", 10), filt("b", 30)
        only_a = filt("a", 10)
        report = check_soundness([p1, p2], only_a, FT, [{"row": 1}])
        assert not report.ok

    def test_runtime_error_reported_not_raised(self):
        p1 = filt("a", 10)
        broken = program("m", ("row",), notify("a", lt(var("never_assigned"), 1)))
        report = check_soundness([p1], broken, FT, [{"row": 1}])
        assert not report.ok
        assert report.violations[0].kind == "error"

    def test_violation_cap(self):
        p1 = filt("a", 10)
        wrong = program(
            "m",
            ("row",),
            assign("x", call("val", arg("row"))),
            ite_notify("a", lt(var("x"), 9999)),
        )
        report = check_soundness(
            [p1], wrong, FT, [{"row": r} for r in range(50)], max_violations=3
        )
        assert len(report.violations) == 3

    def test_speedup_property(self):
        from repro.consolidation import Consolidator

        p1, p2 = filt("a", 10), filt("b", 30)
        merged = Consolidator(FT).consolidate(p1, p2)
        report = check_soundness([p1, p2], merged, FT, [{"row": r} for r in range(20)])
        assert report.ok
        assert report.speedup > 1.0
        assert report.consolidated_cost < report.sequential_cost


class TestSpeedupEdgeCases:
    """Regression: ``speedup`` must be finite and well-defined at zero cost."""

    def test_zero_cost_both_sides_is_unity(self):
        from repro.consolidation.verify import SoundnessReport

        report = SoundnessReport(inputs_checked=3, sequential_cost=0, consolidated_cost=0)
        assert report.speedup == 1.0

    def test_zero_consolidated_cost_stays_finite(self):
        from repro.consolidation.verify import SoundnessReport

        report = SoundnessReport(inputs_checked=3, sequential_cost=120, consolidated_cost=0)
        assert report.speedup == 120.0
        assert report.speedup != float("inf")

    def test_zero_cost_consolidation_end_to_end(self):
        # Programs with empty bodies cost nothing on either side; the
        # checker must report a clean run with speedup exactly 1.
        empty = program("z", ("row",), notify("z", lt(arg("row"), arg("row"))))
        report = check_soundness([empty], empty, FT, [{"row": r} for r in range(3)])
        assert report.ok
        assert report.speedup == 1.0
