"""Cross-cutting property tests tying the static analyses to the dynamic
semantics (beyond the per-module unit tests)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import expr_cost, stmt_cost_bounds
from repro.lang import (
    FunctionTable,
    Interpreter,
    LibraryFunction,
    add,
    arg,
    assign,
    block,
    call,
    ge,
    gt,
    if_,
    ite_notify,
    lt,
    mul,
    notify,
    program,
    sub,
    var,
    while_,
)
from repro.smt import (
    Solver,
    app,
    cone_of_influence,
    eq_f,
    fand,
    fnot,
    for_,
    le_f,
    lt_f,
    num,
    sym,
)

FT = FunctionTable(
    [
        LibraryFunction("f", lambda x: (x * 3) % 7, cost=30),
        LibraryFunction("g", lambda x: x + 2, cost=30),
    ]
)


class TestCostBoundsBracketDynamicCost:
    """``stmt_cost_bounds`` must bracket the interpreter's measured cost."""

    def _check(self, body, inputs):
        p = program("q", ("n",), body, notify("q", True))
        lo, hi = stmt_cost_bounds(p.body, FT)
        interp = Interpreter(FT)
        for n in inputs:
            cost = interp.run(p, {"n": n}).cost
            assert lo <= cost
            if hi is not None:
                assert cost <= hi

    def test_straight_line(self):
        self._check(block(assign("x", call("f", arg("n"))), assign("y", add(var("x"), 1))), range(5))

    def test_branches(self):
        body = if_(
            lt(arg("n"), 3),
            assign("x", call("f", arg("n"))),
            assign("x", 0),
        )
        self._check(body, range(8))

    def test_nested_branches(self):
        body = if_(
            lt(arg("n"), 5),
            if_(lt(arg("n"), 2), assign("x", call("f", arg("n"))), assign("x", 1)),
            assign("x", call("g", arg("n"))),
        )
        self._check(body, range(10))

    def test_loops_lower_bound_only(self):
        body = block(
            assign("i", 0),
            while_(lt(var("i"), arg("n")), assign("i", add(var("i"), 1))),
        )
        self._check(body, range(5))


class TestConeOfInfluence:
    """Pruned entailments must agree with unpruned ones on provable goals."""

    def test_preserves_direct_chains(self):
        solver = Solver()
        a, b, c, d = sym("a"), sym("b"), sym("c"), sym("d")
        hyp = fand(le_f(a, b), le_f(b, c), eq_f(d, num(5)))
        goal = le_f(a, c)
        pruned = cone_of_influence(hyp, goal)
        # The d-conjunct is independent of the goal and must be dropped.
        from repro.smt import free_syms

        assert "d" not in free_syms(pruned)
        assert solver.entails(pruned, goal)

    def test_keeps_transitive_links(self):
        a, b, c = sym("a"), sym("b"), sym("c")
        hyp = fand(eq_f(a, b), eq_f(b, c))
        goal = eq_f(a, c)
        pruned = cone_of_influence(hyp, goal)
        assert pruned == hyp  # both conjuncts reachable through b

    def test_keeps_ground_application_links(self):
        a, b = sym("a"), sym("b")
        hyp = fand(eq_f(a, app("f", num(1))), eq_f(b, app("f", num(1))))
        goal = eq_f(a, b)
        solver = Solver()
        assert solver.entails(cone_of_influence(hyp, goal), goal)

    def test_single_conjunct_untouched(self):
        a, b = sym("a"), sym("b")
        hyp = le_f(a, b)
        assert cone_of_influence(hyp, le_f(num(0), num(1))) == hyp

    @given(st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_pruning_never_proves_more(self, seed):
        """Anything provable from the cone is provable from the whole."""

        import random

        rng = random.Random(seed)
        syms = [sym(f"v{i}") for i in range(6)]
        conjuncts = []
        for _ in range(6):
            u, v = rng.sample(syms, 2)
            conjuncts.append(le_f(u, v) if rng.random() < 0.7 else eq_f(u, v))
        hyp = fand(*conjuncts)
        u, v = rng.sample(syms, 2)
        goal = le_f(u, v)
        solver = Solver()
        if solver.entails(cone_of_influence(hyp, goal), goal):
            assert solver.entails(hyp, goal)


class TestExprCostIsDynamicCost:
    @given(st.integers(-10, 10), st.integers(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_random_expression(self, a, b):
        e = gt(add(call("f", arg("n")), mul(arg("m"), 2)), sub(call("g", arg("n")), 1))
        interp = Interpreter(FT)
        _v, dynamic = interp.eval_expr(e, {"n": a, "m": b})
        assert expr_cost(e, FT) == dynamic
