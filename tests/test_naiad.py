"""Tests for the mini dataflow engine and its operators."""

import pytest

from repro.lang import (
    FunctionTable,
    LibraryFunction,
    arg,
    assign,
    call,
    ite_notify,
    lt,
    program,
    var,
)
from repro.naiad import (
    Collect,
    Count,
    Dataflow,
    Select,
    from_collection,
    run_where_consolidated,
    run_where_many,
)

FT = FunctionTable([LibraryFunction("val", lambda r: (r * 13) % 50, cost=15)])


def filt(pid, bound):
    return program(
        pid,
        ("row",),
        assign("x", call("val", arg("row"))),
        ite_notify(pid, lt(var("x"), bound)),
    )


class TestDataflowBasics:
    def test_where_filters(self):
        q = from_collection(range(20)).where(filt("q", 25), FT).collect("out")
        result = q.run(workers=2)
        expected = [r for r in range(20) if (r * 13) % 50 < 25]
        assert sorted(result.buckets["out"]) == sorted(expected)

    def test_select_projects(self):
        q = from_collection(range(5)).select(lambda r: r * 2).collect("out")
        result = q.run(workers=1)
        assert sorted(result.buckets["out"]) == [0, 2, 4, 6, 8]

    def test_count_sink(self):
        q = from_collection(range(10)).count("n")
        result = q.run(workers=3)
        assert sum(result.buckets["n"]) == 10

    def test_io_cost_charged_once_per_record(self):
        q = from_collection(range(10), io_cost_per_record=7).collect("out")
        result = q.run(workers=2)
        assert result.metrics.io_cost == 70

    def test_udf_cost_accumulates(self):
        q = from_collection(range(10)).where(filt("q", 25), FT).collect("out")
        result = q.run(workers=2)
        # Each record: call(15) + arg(1) + assign(1) + var(1)+const+cmp(1)+branch(2)+notify(1)
        assert result.metrics.udf_cost == 10 * (15 + 1 + 1 + 1 + 1 + 2 + 1)

    def test_deterministic_across_runs(self):
        def build():
            return from_collection(range(30)).where_many([filt("a", 20), filt("b", 40)], FT)

        r1 = build().run(workers=4)
        r2 = build().run(workers=4)
        assert r1.metrics.total_cost == r2.metrics.total_cost
        assert r1.buckets == r2.buckets

    def test_worker_partitioning_covers_all(self):
        q = from_collection(range(17)).collect("out")
        result = q.run(workers=5)
        assert sorted(result.buckets["out"]) == list(range(17))
        assert len(result.metrics.per_worker_total) == 5

    def test_invalid_worker_count(self):
        q = from_collection(range(3)).collect("out")
        with pytest.raises(ValueError):
            q.run(workers=0)

    def test_makespan_is_max_worker(self):
        q = from_collection(range(16)).where(filt("q", 25), FT).collect("out")
        result = q.run(workers=4)
        assert result.metrics.makespan == max(result.metrics.per_worker_total)


class TestOperators:
    def test_where_many_routes_by_pid(self):
        programs = [filt("a", 10), filt("b", 30), filt("c", 50)]
        result = run_where_many(list(range(40)), programs, FT)
        for pid, bound in [("a", 10), ("b", 30), ("c", 50)]:
            expected = [r for r in range(40) if (r * 13) % 50 < bound]
            assert sorted(result.buckets.get(pid, [])) == sorted(expected)

    def test_where_consolidated_equals_where_many(self):
        programs = [filt(f"q{i}", 10 + 7 * i) for i in range(6)]
        rows = list(range(60))
        many = run_where_many(rows, programs, FT)
        cons, report = run_where_consolidated(rows, programs, FT)
        assert many.buckets == cons.buckets
        assert cons.metrics.udf_cost <= many.metrics.udf_cost
        assert report.pair_consolidations == 5

    def test_consolidated_io_matches_many(self):
        programs = [filt(f"q{i}", 10 + 7 * i) for i in range(4)]
        rows = list(range(30))
        many = run_where_many(rows, programs, FT)
        cons, _report = run_where_consolidated(rows, programs, FT)
        assert many.metrics.io_cost == cons.metrics.io_cost

    def test_where_many_requires_programs(self):
        from repro.naiad.operators import WhereMany

        with pytest.raises(ValueError):
            WhereMany([], FT)

    def test_flat_map_expands(self):
        q = from_collection([2, 3]).flat_map(lambda n: range(n)).collect("out")
        result = q.run(workers=1)
        assert sorted(result.buckets["out"]) == [0, 0, 1, 1, 2]

    def test_flat_map_cost_scales_with_output(self):
        q = from_collection([4]).flat_map(lambda n: range(n), base_cost=5, unit_cost=3)
        result = q.run(workers=1)
        assert result.metrics.udf_cost == 5 + 3 * 4

    def test_count_by_key_combines_across_workers(self):
        from repro.naiad import CountByKey

        data = ["a", "b", "a", "c", "a", "b"] * 3
        q = from_collection(data).count_by_key("counts")
        result = q.run(workers=4)
        totals = CountByKey.combine(result.buckets["counts"])
        assert totals == {"a": 9, "b": 6, "c": 3}

    def test_wordcount_pipeline(self):
        from repro.naiad import CountByKey

        docs = [["x", "y"], ["y", "y"], ["z"]]
        q = (
            from_collection(range(len(docs)))
            .flat_map(lambda d: docs[d])
            .count_by_key("wc")
        )
        totals = CountByKey.combine(q.run(workers=2).buckets["wc"])
        assert totals == {"x": 1, "y": 3, "z": 1}

    def test_multi_param_udf_rejected_as_row_filter(self):
        from repro.naiad.operators import Where, _bind_args
        from repro.lang import notify

        bad = program("q", ("a", "b"), notify("q", True))
        with pytest.raises(ValueError):
            _bind_args(bad, 1)
