"""Unit tests for the Ω/Ω′ algorithm: rule selection, options, edge cases."""

import pytest

from repro.consolidation import (
    ConsolidationError,
    ConsolidationOptions,
    Consolidator,
    check_soundness,
)
from repro.lang import (
    FunctionTable,
    LibraryFunction,
    Program,
    SKIP,
    add,
    arg,
    assign,
    block,
    call,
    eq,
    ge,
    gt,
    if_,
    ite_notify,
    le,
    lt,
    notify,
    program,
    program_to_str,
    sub,
    var,
    while_,
)
from repro.lang.visitors import notified_pids, stmt_size


@pytest.fixture
def ft():
    return FunctionTable(
        [
            LibraryFunction("f", lambda x: (x * 3) % 11, cost=50),
            LibraryFunction("g", lambda x: (x * 5) % 13, cost=50),
        ]
    )


def check(ft, p1, p2, inputs, options=None):
    merged = Consolidator(ft, options=options).consolidate(p1, p2)
    report = check_soundness([p1, p2], merged, ft, inputs)
    assert report.ok, report.violations
    return merged, report


class TestPreconditions:
    def test_mismatched_params_rejected(self, ft):
        p1 = program("a", ("x",), notify("a", True))
        p2 = program("b", ("y",), notify("b", True))
        with pytest.raises(ConsolidationError):
            Consolidator(ft).consolidate(p1, p2)

    def test_shared_pids_rejected(self, ft):
        p1 = program("a", ("x",), notify("a", True))
        p2 = program("b", ("x",), notify("a", False))
        with pytest.raises(ConsolidationError):
            Consolidator(ft).consolidate(p1, p2)

    def test_locals_renamed_apart(self, ft):
        """Same local name in both programs must not collide."""

        p1 = program("a", ("x",), assign("t", add(arg("x"), 1)), ite_notify("a", gt(var("t"), 0)))
        p2 = program("b", ("x",), assign("t", sub(arg("x"), 1)), ite_notify("b", gt(var("t"), 0)))
        merged, report = check(ft, p1, p2, [{"x": i} for i in range(-3, 4)])
        assert report.ok


class TestRuleSelection:
    def test_if1_fires_on_entailed_test(self, ft):
        p1 = program(
            "a",
            ("x",),
            if_(lt(arg("x"), 10), if_(lt(arg("x"), 20), notify("a", True), notify("a", False)), notify("a", False)),
        )
        p2 = program("b", ("x",), notify("b", True))
        c = Consolidator(ft)
        merged = c.consolidate(p1, p2)
        assert "If1" in c.trace
        # The inner (redundant) test is gone.
        assert program_to_str(merged).count("<") == 1

    def test_if2_fires_on_refuted_test(self, ft):
        p1 = program(
            "a",
            ("x",),
            if_(
                lt(arg("x"), 10),
                if_(ge(arg("x"), 10), notify("a", True), notify("a", False)),
                notify("a", False),
            ),
        )
        p2 = program("b", ("x",), notify("b", True))
        c = Consolidator(ft)
        merged = c.consolidate(p1, p2)
        assert "If2" in c.trace

    def test_if3_on_related_predicates(self, ft):
        p1 = program("a", ("x",), ite_notify("a", lt(call("f", arg("x")), 5)))
        p2 = program("b", ("x",), ite_notify("b", lt(call("f", arg("x")), 10)))
        c = Consolidator(ft)
        merged = c.consolidate(p1, p2)
        assert "If3" in c.trace
        merged2, report = check(ft, p1, p2, [{"x": i} for i in range(20)])

    def test_if5_on_unrelated_predicates(self, ft):
        p1 = program("a", ("x",), ite_notify("a", lt(call("f", arg("x")), 5)))
        p2 = program("b", ("x",), ite_notify("b", lt(call("g", arg("x")), 10)))
        c = Consolidator(ft)
        c.consolidate(p1, p2)
        assert "If3" not in c.trace
        assert "If5" in c.trace

    def test_forced_if3_mode(self, ft):
        options = ConsolidationOptions(if_rule_mode="always_if3")
        p1 = program("a", ("x",), ite_notify("a", lt(call("f", arg("x")), 5)))
        p2 = program("b", ("x",), ite_notify("b", lt(call("g", arg("x")), 10)))
        c = Consolidator(ft, options=options)
        c.consolidate(p1, p2)
        assert "If3" in c.trace

    def test_forced_if5_mode(self, ft):
        options = ConsolidationOptions(if_rule_mode="always_if5")
        p1 = program("a", ("x",), ite_notify("a", lt(call("f", arg("x")), 5)))
        p2 = program("b", ("x",), ite_notify("b", lt(call("f", arg("x")), 10)))
        c = Consolidator(ft, options=options)
        c.consolidate(p1, p2)
        assert "If3" not in c.trace

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ConsolidationOptions(if_rule_mode="always_if7")

    def test_embed_size_guard_downgrades(self, ft):
        options = ConsolidationOptions(max_embed_size=1)
        p1 = program("a", ("x",), ite_notify("a", lt(call("f", arg("x")), 5)))
        p2 = program("b", ("x",), ite_notify("b", lt(call("f", arg("x")), 10)))
        c = Consolidator(ft, options=options)
        merged = c.consolidate(p1, p2)
        assert "If3" not in c.trace
        _m, report = check(ft, p1, p2, [{"x": i} for i in range(20)], options)


class TestLoops:
    def _counting_loop(self, pid, start, bound, acc_fn):
        return program(
            pid,
            ("n",),
            assign("i", start),
            assign("s", 0),
            while_(
                lt(var("i"), bound),
                block(assign("s", add(var("s"), acc_fn(var("i")))), assign("i", add(var("i"), 1))),
            ),
            ite_notify(pid, gt(var("s"), 5)),
        )

    def test_identical_trip_counts_fuse(self, ft):
        p1 = self._counting_loop("a", lift_int(0), lift_int(8), lambda i: call("f", i))
        p2 = self._counting_loop("b", lift_int(0), lift_int(8), lambda i: call("f", i))
        c = Consolidator(ft)
        merged = c.consolidate(p1, p2)
        assert "Loop2" in c.trace
        report = check_soundness([p1, p2], merged, ft, [{"n": 0}])
        assert report.ok

    def test_unrelated_trip_counts_run_sequentially(self, ft):
        p1 = self._counting_loop("a", lift_int(0), arg("n"), lambda i: call("f", i))
        p2 = self._counting_loop("b", lift_int(3), lift_int(8), lambda i: call("f", i))
        c = Consolidator(ft)
        merged = c.consolidate(p1, p2)
        assert "Loop2" not in c.trace and "Loop3" not in c.trace
        report = check_soundness([p1, p2], merged, ft, [{"n": k} for k in range(10)])
        assert report.ok

    def test_loop3_when_one_runs_longer(self, ft):
        p1 = self._counting_loop("a", lift_int(0), lift_int(10), lambda i: call("f", i))
        p2 = self._counting_loop("b", lift_int(0), lift_int(6), lambda i: call("f", i))
        c = Consolidator(ft)
        merged = c.consolidate(p1, p2)
        assert "Loop3" in c.trace
        report = check_soundness([p1, p2], merged, ft, [{"n": 0}])
        assert report.ok
        # The shared prefix of iterations calls f only once per index.
        calls = []
        counting = FunctionTable(
            [
                LibraryFunction("f", lambda x: calls.append(x) or (x * 3) % 11, cost=50),
                LibraryFunction("g", lambda x: (x * 5) % 13, cost=50),
            ]
        )
        from repro.lang import Interpreter

        Interpreter(counting).run(merged, {"n": 0})
        assert len(calls) == 10  # 6 shared + 4 tail, not 16

    def test_loop_rules_can_be_disabled(self, ft):
        options = ConsolidationOptions(enable_loop_rules=False)
        p1 = self._counting_loop("a", lift_int(0), lift_int(8), lambda i: call("f", i))
        p2 = self._counting_loop("b", lift_int(0), lift_int(8), lambda i: call("f", i))
        c = Consolidator(ft, options=options)
        merged = c.consolidate(p1, p2)
        assert "Loop2" not in c.trace
        report = check_soundness([p1, p2], merged, ft, [{"n": 0}])
        assert report.ok

    def test_dead_loop_dropped(self, ft):
        p1 = program(
            "a",
            ("n",),
            assign("i", 5),
            while_(lt(var("i"), 0), assign("i", add(var("i"), 1))),
            notify("a", True),
        )
        p2 = program("b", ("n",), notify("b", True))
        c = Consolidator(ft)
        merged = c.consolidate(p1, p2)
        assert "LoopDrop" in c.trace
        assert "while" not in program_to_str(merged)


class TestNoSmtMode:
    def test_syntactic_only_still_sound(self, ft):
        options = ConsolidationOptions(use_smt=False)
        p1 = program("a", ("x",), assign("u", call("f", arg("x"))), ite_notify("a", lt(var("u"), 5)))
        p2 = program("b", ("x",), assign("v", call("f", arg("x"))), ite_notify("b", lt(var("v"), 9)))
        merged, report = check(ft, p1, p2, [{"x": i} for i in range(15)], options)
        assert report.ok

    def test_syntactic_cse_still_works(self, ft):
        options = ConsolidationOptions(use_smt=False)
        p1 = program("a", ("x",), assign("u", call("f", arg("x"))), ite_notify("a", lt(var("u"), 5)))
        p2 = program("b", ("x",), assign("v", call("f", arg("x"))), ite_notify("b", lt(var("v"), 9)))
        merged = Consolidator(ft, options=ConsolidationOptions(use_smt=False)).consolidate(p1, p2)
        assert program_to_str(merged).count("f(") == 1


class TestStructure:
    def test_all_notifications_preserved(self, ft):
        p1 = program("a", ("x",), ite_notify("a", lt(call("f", arg("x")), 5)))
        p2 = program("b", ("x",), ite_notify("b", lt(call("g", arg("x")), 9)))
        merged = Consolidator(ft).consolidate(p1, p2)
        assert notified_pids(merged.body) == {"a", "b"}

    def test_merged_pid_and_params(self, ft):
        p1 = program("a", ("x",), notify("a", True))
        p2 = program("b", ("x",), notify("b", False))
        merged = Consolidator(ft).consolidate(p1, p2)
        assert merged.params == ("x",)
        assert merged.pid == "a&b"

    def test_trace_is_reset_between_runs(self, ft):
        c = Consolidator(ft)
        p1 = program("a", ("x",), notify("a", True))
        p2 = program("b", ("x",), notify("b", False))
        c.consolidate(p1, p2)
        first = list(c.trace)
        c.consolidate(program("c", ("x",), notify("c", True)), program("d", ("x",), notify("d", False)))
        assert c.trace is not first


def lift_int(v):
    from repro.lang import lift

    return lift(v)
