"""The fuzzing driver and its CLI front end."""

import pytest

from repro.cli import main
from repro.testing import run_fuzz
from repro.testing.corpus import corpus_files, read_case

pytestmark = pytest.mark.fuzz


def test_fuzz_smoke_all_schemas():
    report = run_fuzz(seed=0, cases=10, executors=("serial",), shrink=False)
    assert report.cases_run == 10
    assert report.ok, [f.spec for f in report.failures]
    assert set(report.per_schema) == {"weather", "flight", "news", "twitter", "stock"}
    assert sum(report.per_schema.values()) == 10


def test_fuzz_respects_time_budget():
    report = run_fuzz(seed=0, cases=10_000, time_budget=3.0, executors=("serial",))
    assert report.cases_run < 10_000
    assert report.ok


def test_battery_deadline_checked_between_stages():
    """An already-expired deadline stops the battery before any stage runs,
    and a mid-battery expiry returns only the stages that finished."""

    import time

    from repro.testing.generator import case_inputs, generate_case, schema_dataset
    from repro.testing.oracles import run_battery

    programs = generate_case(0, "weather", 2)
    dataset = schema_dataset("weather")
    inputs = case_inputs("weather")

    expired = run_battery(
        programs, dataset, inputs=inputs, executors=("serial",),
        deadline=time.perf_counter() - 1.0,
    )
    assert expired.timed_out
    assert expired.report is None  # no stage ran, so no consolidation report
    assert expired.ok

    complete = run_battery(
        programs, dataset, inputs=inputs, executors=("serial",),
        deadline=time.perf_counter() + 3600.0,
    )
    assert not complete.timed_out
    assert complete.report is not None


def test_fuzz_timed_out_case_not_counted():
    """A case whose battery is cut off mid-way does not count as run."""

    report = run_fuzz(seed=0, cases=5, time_budget=1e-9, executors=("serial",))
    assert report.cases_run == 0
    assert report.ok


def test_fuzz_single_schema():
    report = run_fuzz(seed=5, cases=4, schemas=["news"], executors=("serial",))
    assert report.per_schema == {"news": 4}


def test_fuzz_rejects_unknown_schema():
    with pytest.raises(ValueError, match="unknown schema"):
        run_fuzz(cases=1, schemas=["nope"])


def test_fuzz_emits_corpus_for_failures(tmp_path):
    """A (simulated) miscompile failure is caught, shrunk, and lands in
    the corpus directory as a replayable case."""

    from repro.testing import miscompile

    with miscompile():
        report = run_fuzz(
            seed=0,
            cases=1,
            schemas=["weather"],
            executors=("serial",),
            emit_corpus=str(tmp_path),
        )
    assert not report.ok
    files = corpus_files(tmp_path)
    assert files, "the failure must be written to the corpus directory"
    case = read_case(files[0])
    assert case.expect == "discrepancy"
    assert case.schema == "weather"
    assert report.failures[0].shrunk_size <= 10


def test_cli_fuzz_exit_codes(tmp_path, capsys):
    assert main(["fuzz", "--seed", "0", "--cases", "3", "--executors", "serial",
                 "--no-shrink"]) == 0
    out = capsys.readouterr()
    assert "0 failure(s)" in out.err
