"""ExecutionConfig API: validation, deprecation shims, executors, telemetry.

The contract under test: the new ``config=`` object is the one way to set
run-time knobs; every legacy keyword still works identically but warns;
telemetry never changes observable outputs; both pool executors produce
the same merged program as the serial driver.
"""

import pickle
import warnings

import pytest

from repro.config import ExecutionConfig, resolve_config
from repro.consolidation import consolidate_all
from repro.datasets import generate_weather
from repro.lang import parse_program
from repro.naiad import from_collection, run_where_consolidated, run_where_many
from repro.queries.weather_queries import make_batch
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def weather():
    return generate_weather(cities=25, years=1, seed=3)


@pytest.fixture(scope="module")
def batch(weather):
    return make_batch(weather, "Q1", n=6, seed=3)


def _buckets(result):
    return {pid: sorted(map(repr, rows)) for pid, rows in result.buckets.items()}


class TestExecutionConfig:
    def test_defaults(self):
        cfg = ExecutionConfig()
        assert cfg.backend == "compiled"
        assert cfg.executor == "serial"
        assert cfg.telemetry.enabled is False

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(backend="llvm")
        with pytest.raises(ValueError):
            ExecutionConfig(executor="fiber")
        with pytest.raises(ValueError):
            ExecutionConfig(workers=0)
        with pytest.raises(ValueError):
            ExecutionConfig(max_workers=0)

    def test_frozen_and_evolve(self):
        cfg = ExecutionConfig()
        with pytest.raises(AttributeError):
            cfg.workers = 8
        assert cfg.evolve(workers=8).workers == 8
        assert cfg.workers == 4

    def test_resolve_functions(self, weather):
        cfg = ExecutionConfig(functions=weather.functions)
        assert cfg.resolve_functions(None) is weather.functions
        other = weather.functions
        assert cfg.resolve_functions(other) is other
        assert len(ExecutionConfig().resolve_functions(None)) == 0

    def test_resolve_config_merges_and_warns(self):
        with pytest.warns(DeprecationWarning, match="workers"):
            cfg = resolve_config(None, workers=2)
        assert cfg.workers == 2
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_config(None, workers=None).workers == 4


class TestDeprecatedKwargShims:
    """Legacy keywords warn but behave byte-for-byte like the config."""

    def test_run_where_many_workers_kwarg(self, weather, batch):
        with pytest.warns(DeprecationWarning):
            legacy = run_where_many(weather.rows, batch, weather.functions, workers=2)
        modern = run_where_many(
            weather.rows, batch, weather.functions, config=ExecutionConfig(workers=2)
        )
        assert _buckets(legacy) == _buckets(modern)
        assert legacy.metrics.total_cost == modern.metrics.total_cost

    def test_run_where_many_backend_kwarg(self, weather, batch):
        with pytest.warns(DeprecationWarning):
            legacy = run_where_many(
                weather.rows[:40], batch, weather.functions, backend="interp"
            )
        modern = run_where_many(
            weather.rows[:40],
            batch,
            weather.functions,
            config=ExecutionConfig(backend="interp"),
        )
        assert _buckets(legacy) == _buckets(modern)

    def test_query_run_workers_kwarg(self, weather, batch):
        q = from_collection(weather.rows).where_many(batch, weather.functions)
        with pytest.warns(DeprecationWarning):
            legacy = q.run(workers=3)
        q2 = from_collection(weather.rows).where_many(batch, weather.functions)
        modern = q2.run(ExecutionConfig(workers=3))
        assert legacy.metrics.per_worker_total == modern.metrics.per_worker_total

    def test_from_collection_io_cost_kwarg(self, weather):
        with pytest.warns(DeprecationWarning, match="io_cost_per_record"):
            q = from_collection(weather.rows, io_cost_per_record=7)
        assert q.config.io_cost_per_record == 7

    def test_consolidate_all_parallel_kwarg(self, weather, batch):
        with pytest.warns(DeprecationWarning, match="parallel"):
            report = consolidate_all(batch, weather.functions, parallel=True)
        assert report.executor == "thread"
        assert report.parallel is True
        with pytest.warns(DeprecationWarning):
            serial = consolidate_all(batch, weather.functions, parallel=False)
        assert serial.executor == "serial"

    def test_jobmetrics_alias_warns(self):
        from repro.naiad import dataflow

        with pytest.warns(DeprecationWarning, match="RunMetrics"):
            alias = dataflow.JobMetrics
        assert alias is dataflow.RunMetrics


class TestExecutors:
    """thread/process pools must reproduce the serial driver's output."""

    def test_programs_are_picklable(self, batch):
        assert pickle.loads(pickle.dumps(batch[0])) == batch[0]

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pool_matches_serial(self, weather, batch, executor):
        serial = consolidate_all(batch, weather.functions, executor="serial")
        pooled = consolidate_all(
            batch, weather.functions, executor=executor, max_workers=2
        )
        assert pooled.executor == executor
        assert pooled.program == serial.program
        assert pooled.pair_consolidations == serial.pair_consolidations
        assert pooled.tree_depth == serial.tree_depth

    def test_executor_recorded_in_report(self, weather, batch):
        report = consolidate_all(batch, weather.functions, executor="thread")
        assert report.executor == "thread"
        assert report.max_workers >= 1

    def test_unknown_executor_rejected(self, weather, batch):
        with pytest.raises(ValueError, match="executor"):
            consolidate_all(batch, weather.functions, executor="gpu")

    def test_config_supplies_executor(self, weather, batch):
        cfg = ExecutionConfig(executor="thread", max_workers=2)
        report = consolidate_all(batch, weather.functions, config=cfg)
        assert report.executor == "thread"

    def test_end_to_end_process_executor(self, weather, batch):
        cfg = ExecutionConfig(executor="process", max_workers=2)
        serial, _ = run_where_consolidated(
            weather.rows[:60], batch, weather.functions
        )
        pooled, report = run_where_consolidated(
            weather.rows[:60], batch, weather.functions, config=cfg
        )
        assert report.executor == "process"
        assert _buckets(serial) == _buckets(pooled)


class TestExecutorBackendMatrix:
    """Every executor x backend combination reproduces the serial/compiled run.

    The vectorized backend buffers records per worker and replays them as
    column batches at flush time, so worker-level accounting (not just the
    merged buckets) must survive the backend swap under every executor.
    """

    @pytest.fixture(scope="class")
    def reference(self, weather, batch):
        return run_where_consolidated(weather.rows[:40], batch, weather.functions)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("backend", ["interp", "compiled", "vectorized"])
    def test_consolidated_parity(self, weather, batch, reference, executor, backend):
        baseline, _ = reference
        cfg = ExecutionConfig(executor=executor, backend=backend, max_workers=2)
        result, report = run_where_consolidated(
            weather.rows[:40], batch, weather.functions, config=cfg
        )
        assert report.executor == executor
        assert _buckets(result) == _buckets(baseline)
        assert result.metrics.udf_cost == baseline.metrics.udf_cost
        assert result.metrics.per_worker_total == baseline.metrics.per_worker_total

    @pytest.mark.parametrize("backend", ["interp", "compiled", "vectorized"])
    def test_where_many_parity(self, weather, batch, backend):
        baseline = run_where_many(weather.rows[:40], batch, weather.functions)
        result = run_where_many(
            weather.rows[:40],
            batch,
            weather.functions,
            config=ExecutionConfig(backend=backend, workers=3),
        )
        assert _buckets(result) == _buckets(baseline)
        assert result.metrics.udf_cost == baseline.metrics.udf_cost


class TestTelemetryDifferential:
    """Telemetry on vs off: identical outputs, metrics only on the side."""

    def test_run_where_many_outputs_identical(self, weather, batch):
        plain = run_where_many(weather.rows, batch, weather.functions)
        live = ExecutionConfig(telemetry=Telemetry.capture(trace=True))
        traced = run_where_many(weather.rows, batch, weather.functions, config=live)
        assert _buckets(plain) == _buckets(traced)
        assert plain.metrics.udf_cost == traced.metrics.udf_cost
        assert plain.metrics.total_cost == traced.metrics.total_cost
        assert plain.metrics.per_worker_total == traced.metrics.per_worker_total

    def test_consolidated_outputs_identical(self, weather, batch):
        plain, plain_rep = run_where_consolidated(
            weather.rows, batch, weather.functions
        )
        live = ExecutionConfig(telemetry=Telemetry.capture())
        traced, traced_rep = run_where_consolidated(
            weather.rows, batch, weather.functions, config=live
        )
        assert _buckets(plain) == _buckets(traced)
        assert traced_rep.program == plain_rep.program

    def test_per_operator_metrics_content(self, weather, batch):
        cfg = ExecutionConfig(telemetry=Telemetry.capture(), workers=2)
        result = run_where_many(weather.rows, batch, weather.functions, config=cfg)
        ops = result.metrics.per_operator
        name = f"whereMany[{len(batch)}]"
        assert ops[name].records_in == len(weather.rows)
        assert ops[name].udf_cost == result.metrics.udf_cost
        assert ops[name].notifications == sum(
            len(rows) for rows in result.buckets.values()
        )
        reg = cfg.telemetry.metrics
        assert reg.counter("dataflow_records_total").value == len(weather.rows)
        assert (
            reg.counter("dataflow_operator_records_in_total", operator=name).value
            == len(weather.rows)
        )

    def test_disabled_run_skips_per_operator(self, weather, batch):
        result = run_where_many(weather.rows, batch, weather.functions)
        assert result.metrics.per_operator == {}

    def test_smt_and_compile_metrics_recorded(self, weather, batch):
        from repro.lang.compile import clear_compile_cache

        clear_compile_cache()
        cfg = ExecutionConfig(telemetry=Telemetry.capture())
        run_where_consolidated(weather.rows[:20], batch, weather.functions, config=cfg)
        reg = cfg.telemetry.metrics
        assert reg.counter("smt_checks").value > 0
        assert reg.histogram("smt_check_seconds").count > 0
        assert reg.counter("compile_cache_misses_total").value > 0
        assert reg.counter("consolidation_pairs_total").value == len(batch) - 1
        assert reg.histogram("consolidation_pair_seconds").count == len(batch) - 1

    def test_harness_rows_carry_metrics(self, weather, batch):
        from repro.experiments.harness import run_experiment

        cfg = ExecutionConfig(telemetry=Telemetry.capture(), workers=2)
        result = run_experiment(weather, batch, family="Q1", config=cfg)
        names = {c["name"] for c in result.metrics["counters"]}
        assert "dataflow_records_total" in names
        assert "smt_checks" in names
        assert result.executor == "serial"
        # The parent registry aggregated the child's counters too.
        assert cfg.telemetry.metrics.counter("dataflow_runs_total").value >= 2


class TestTelemetryOverheadPath:
    def test_disabled_telemetry_takes_fast_path(self, weather, batch):
        """The untraced engine never allocates OperatorStats."""

        q = from_collection(weather.rows[:30]).where_many(batch, weather.functions)
        result = q.run()
        assert result.metrics.per_operator == {}


PROGRAM_SRC = """
program tiny(row) {
  t := monthly_avg_temp(@row, 7);
  if (t > 50) { notify tiny true; } else { notify tiny false; }
}
"""


def test_parse_alias_exported():
    import repro

    p = repro.parse(PROGRAM_SRC)
    assert p == parse_program(PROGRAM_SRC)
    assert p.pid == "tiny"
