"""The profiling → calibration → planner pipeline (repro.profiling).

Covers the trace store's schema discipline, golden weight recovery and
byte-identical determinism of the fitter, the NULL-twin zero-cost
promise, sampling through both backend hooks, the cost-driven planner's
features and decisions (including the loop-shape axis and the SMT
budget), and semantics parity between planners end to end.
"""

import json
import random

import pytest

from repro.config import PLANNERS, ExecutionConfig
from repro.consolidation import consolidate_all
from repro.datasets import generate_weather
from repro.lang.builder import (
    add,
    arg,
    assign,
    block,
    call,
    gt,
    ite_notify,
    le,
    lt,
    program,
    var,
    while_,
)
from repro.lang.compile import make_runner
from repro.lang.cost import DEFAULT_COST_MODEL, cost_model_from_weights
from repro.naiad.linq import run_where_consolidated, run_where_many
from repro.profiling import (
    NULL_PROFILER,
    OP_KINDS,
    RECORD_KIND,
    TRACE_SCHEMA_VERSION,
    CalibratedCostModel,
    Profiler,
    TraceSample,
    TraceStore,
    fit_calibration,
    pair_savings,
    plan_level,
    program_units,
    read_trace,
    trace_fingerprint,
)
from repro.queries import DOMAIN_QUERIES


@pytest.fixture(scope="module")
def weather():
    return generate_weather(cities=30)


def _loop_program(pid, accessor, threshold):
    """A Q3/Q4-shaped yearly loop (the fusion-candidate shape)."""

    return program(
        pid,
        ("row",),
        assign("s", 0),
        assign("m", 1),
        while_(
            le(var("m"), 12),
            block(
                assign("s", add(var("s"), call(accessor, arg("row"), var("m")))),
                assign("m", add(var("m"), 1)),
            ),
        ),
        ite_notify(pid, gt(var("s"), 12 * threshold)),
    )


def _cmp_program(pid, accessor, month, threshold):
    return program(
        pid,
        ("row",),
        ite_notify(pid, gt(call(accessor, arg("row"), month), threshold)),
    )


# ---------------------------------------------------------------------------
# features
# ---------------------------------------------------------------------------


class TestFeatures:
    def test_program_units_counts_call_cost_and_record(self, weather):
        p = _cmp_program("q", "monthly_avg_temp", 6, 50)
        units = program_units(p, weather.functions)
        assert units[RECORD_KIND] == 1.0
        assert units["call"] == float(weather.functions["monthly_avg_temp"].cost)
        assert units["cmp"] == 1.0
        assert units["branch"] == 1.0

    def test_loop_unrolls_deterministically(self, weather):
        from repro.profiling.features import LOOP_UNROLL

        p = _loop_program("q", "monthly_avg_temp", 40)
        units = program_units(p, weather.functions)
        # One call per iteration, LOOP_UNROLL iterations.
        assert units["call"] == float(
            LOOP_UNROLL * weather.functions["monthly_avg_temp"].cost
        )
        # Loop test: 1 + LOOP_UNROLL evaluations, plus the notify's cmp.
        assert units["cmp"] == float(1 + LOOP_UNROLL) + 1.0


# ---------------------------------------------------------------------------
# trace store
# ---------------------------------------------------------------------------


class TestTraceStore:
    def _sample(self, pid="q0", seconds=0.5, ts=1.0):
        return TraceSample(
            pid=pid,
            backend="compiled",
            domain="weather",
            units={"cmp": 2.0, "call": 40.0, RECORD_KIND: 1.0},
            cost_units=42,
            seconds=seconds,
            ts=ts,
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceStore(path) as store:
            store.append(self._sample("q0"))
            store.append(self._sample("q1", seconds=0.25, ts=2.0))
        samples, skipped = read_trace(path)
        assert skipped == 0
        assert [s.pid for s in samples] == ["q0", "q1"]
        assert samples[0].units == {"cmp": 2.0, "call": 40.0, RECORD_KIND: 1.0}
        assert samples[1].seconds == 0.25

    def test_incompatible_lines_are_skipped_not_misfit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps(self._sample().to_dict())
        future = json.dumps(
            dict(self._sample().to_dict(), schema=TRACE_SCHEMA_VERSION + 1)
        )
        path.write_text(f"{good}\nnot json at all\n{future}\n[1,2,3]\n")
        samples, skipped = read_trace(path)
        assert len(samples) == 1
        assert skipped == 3

    def test_missing_file_is_empty(self, tmp_path):
        samples, skipped = read_trace(tmp_path / "nope.jsonl")
        assert samples == [] and skipped == 0

    def test_fingerprint_is_content_addressed(self):
        a = [self._sample("q0"), self._sample("q1")]
        b = [self._sample("q0"), self._sample("q1")]
        assert trace_fingerprint(a) == trace_fingerprint(b)
        assert trace_fingerprint(a) != trace_fingerprint(list(reversed(a)))


# ---------------------------------------------------------------------------
# calibration fitter
# ---------------------------------------------------------------------------


PLANTED = {"cmp": 2e-7, "call": 1e-8, "arith": 1e-7, RECORD_KIND: 5e-7}


def _synthetic_trace(n=200, seed=42):
    rng = random.Random(seed)
    samples = []
    for i in range(n):
        units = {
            "cmp": float(rng.randint(0, 20)),
            "call": float(rng.randint(0, 400)),
            "arith": float(rng.randint(0, 30)),
            RECORD_KIND: float(rng.randint(1, 64)),
        }
        seconds = sum(PLANTED[k] * v for k, v in units.items())
        samples.append(
            TraceSample(
                pid=f"q{i % 7}",
                backend=("compiled", "interp", "vectorized")[i % 3],
                domain="synthetic",
                units=units,
                cost_units=int(units["call"]),
                seconds=seconds,
                records=int(units[RECORD_KIND]),
                ts=float(i),
            )
        )
    return samples


class TestCalibration:
    def test_golden_weight_recovery(self):
        model = fit_calibration(_synthetic_trace())
        for kind, want in PLANTED.items():
            got = model.weights[kind]
            assert got == pytest.approx(want, rel=0.05), (kind, got, want)
        assert model.r2 > 0.99
        assert model.residual_abs_mean < 1e-7
        assert model.samples == 200
        assert model.backends == {"compiled": 67, "interp": 67, "vectorized": 66}
        assert model.fitted_at == 199.0  # newest sample ts, not wall clock
        assert model.source == "fit"
        # Unsupported kinds clamp to zero with zero support.
        assert model.weights["logic"] == 0.0
        assert model.support["logic"] == 0

    def test_same_trace_fits_byte_identical(self):
        a = fit_calibration(_synthetic_trace()).to_json()
        b = fit_calibration(_synthetic_trace()).to_json()
        assert a == b

    def test_model_json_round_trip(self, tmp_path):
        model = fit_calibration(_synthetic_trace())
        path = tmp_path / "model.json"
        model.save(path)
        loaded = CalibratedCostModel.load(path)
        assert loaded.to_json() == model.to_json()
        assert loaded.weights == dict(model.weights)

    def test_empty_trace_is_rejected(self):
        with pytest.raises(ValueError):
            fit_calibration([])

    def test_confidence_tiers(self):
        model = fit_calibration(_synthetic_trace())
        assert model.confidence("cmp") == "high"
        assert model.confidence("logic") == "low"  # no support at all

    def test_uniform_fallback(self):
        model = CalibratedCostModel.uniform(DEFAULT_COST_MODEL)
        assert model.source == "uniform"
        assert model.staleness_seconds() == 0.0
        p = _cmp_program("q", "f", 1, 5)
        assert model.predict_program_seconds(p) > 0.0

    def test_cost_model_seam(self):
        # Planted weights normalized to the reference kind give back an
        # integer Figure-2 model through the repro.lang.cost seam.
        cm = cost_model_from_weights({"var": 1e-8, "cmp": 2e-8, "arith": 1e-8})
        assert cm.cmp == 2 * cm.var
        model = fit_calibration(_synthetic_trace())
        assert model.to_cost_model() is not None


# ---------------------------------------------------------------------------
# profiler hooks + NULL twin
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_wrap_runner_samples_at_the_stride(self, tmp_path, weather):
        p = _cmp_program("q0", "monthly_avg_temp", 6, 50)
        store = TraceStore(tmp_path / "t.jsonl")
        profiler = Profiler(store, domain="weather", sample_every=2)
        runner = make_runner(
            p, weather.functions, backend="compiled", profiler=profiler
        )
        row = weather.rows[0]
        for _ in range(6):
            runner({"row": row})
        store.close()
        samples, _ = read_trace(store.path)
        assert len(samples) == 3  # every 2nd of 6
        assert {s.backend for s in samples} <= {"compiled", "interp"}
        assert all(s.domain == "weather" for s in samples)
        assert all(s.units[RECORD_KIND] == 1.0 for s in samples)
        assert all(s.cost_units > 0 for s in samples)

    def test_record_batch_scales_units_by_records(self, tmp_path, weather):
        p = _cmp_program("q0", "monthly_avg_temp", 6, 50)
        store = TraceStore(tmp_path / "t.jsonl")
        profiler = Profiler(store, domain="weather", sample_every=1)
        profiler.record_batch(p, weather.functions, 0.5, 999, records=25)
        store.close()
        (sample,), _ = read_trace(store.path)
        per_record = program_units(p, weather.functions)
        assert sample.backend == "vectorized"
        assert sample.records == 25
        assert sample.units[RECORD_KIND] == 25.0
        assert sample.units["call"] == per_record["call"] * 25

    def test_null_twin_is_inert_and_identity(self, weather):
        p = _cmp_program("q0", "monthly_avg_temp", 6, 50)
        runner = object()
        assert NULL_PROFILER.wrap_runner(runner, p, None, "interp") is runner
        assert NULL_PROFILER.enabled is False
        NULL_PROFILER.record_batch(p, None, 1.0, 1, 1)  # must not raise
        assert NULL_PROFILER.samples_taken == 0
        # make_runner with no profiler hands back the raw runner: a second
        # make_runner with the NULL twin must behave identically.
        bare = make_runner(p, weather.functions, backend="compiled")
        nulled = make_runner(
            p, weather.functions, backend="compiled", profiler=NULL_PROFILER
        )
        row = weather.rows[0]
        assert bare({"row": row}).cost == nulled({"row": row}).cost

    def test_sample_every_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Profiler(TraceStore(tmp_path / "t.jsonl"), sample_every=0)


# ---------------------------------------------------------------------------
# the cost-driven planner
# ---------------------------------------------------------------------------


class TestPlanner:
    def test_loop_shape_predicts_fusion_savings(self, weather):
        # Q3/Q4-shaped loops over *different* accessors share no call or
        # cmp feature, but their `while (m <= 12)` shapes match — SMT
        # loop fusion dedups the loop control, so the planner must see
        # positive savings (the regression that motivated the axis).
        a = _loop_program("qa", "monthly_avg_temp", 40)
        b = _loop_program("qb", "monthly_rainfall", 80)
        model = CalibratedCostModel.uniform(DEFAULT_COST_MODEL)
        plan = plan_level([a, b], weather.functions, model)
        (decision,) = plan.decisions
        assert decision.merge is True
        assert decision.predicted_savings > 0.0

    def test_disjoint_pair_is_skipped(self, weather):
        a = _cmp_program("qa", "monthly_avg_temp", 6, 50)
        b = _cmp_program("qb", "monthly_rainfall", 2, 80)
        model = CalibratedCostModel.uniform(DEFAULT_COST_MODEL)
        plan = plan_level([a, b], weather.functions, model)
        (decision,) = plan.decisions
        assert decision.merge is False
        assert decision.predicted_savings == 0.0

    def test_highest_savings_pairs_match_first(self, weather):
        loop_a = _loop_program("qa", "monthly_avg_temp", 40)
        loop_b = _loop_program("qb", "monthly_avg_temp", 60)
        cmp_c = _cmp_program("qc", "monthly_avg_temp", 6, 50)
        cmp_d = _cmp_program("qd", "monthly_avg_temp", 6, 80)
        model = CalibratedCostModel.uniform(DEFAULT_COST_MODEL)
        plan = plan_level(
            [cmp_c, loop_a, cmp_d, loop_b], weather.functions, model
        )
        merged = [(d.left, d.right) for d in plan.decisions if d.merge]
        # The two loops (indices 1, 3) share far more predicted seconds
        # than the two comparisons, so they pair first.
        assert merged[0] == (1, 3)
        assert (0, 2) in merged
        assert plan.carried == ()

    def test_plan_is_deterministic(self, weather):
        programs = DOMAIN_QUERIES["weather"].make_batch(
            weather, "Mix", n=9, seed=5
        )
        model = CalibratedCostModel.uniform(DEFAULT_COST_MODEL)
        a = plan_level(programs, weather.functions, model)
        b = plan_level(programs, weather.functions, model)
        assert a == b
        assert len(a.carried) == 1  # odd program carried, never dropped

    def test_pair_savings_is_symmetric(self):
        a = {("call", "f"): 3.0, ("cmp", "x"): 1.0}
        b = {("call", "f"): 2.0, ("loop", "s"): 5.0}
        assert pair_savings(a, b) == pair_savings(b, a) == 2.0


# ---------------------------------------------------------------------------
# planner end to end: semantics parity, budget, provenance, config
# ---------------------------------------------------------------------------


class TestPlannerEndToEnd:
    def test_calibrated_planner_preserves_buckets(self, weather):
        programs = DOMAIN_QUERIES["weather"].make_batch(
            weather, "Mix", n=10, seed=2
        )
        rows = list(weather.rows[:80])
        config = ExecutionConfig(planner="calibrated")
        many = run_where_many(rows, programs, weather.functions, config=config)
        planned, report = run_where_consolidated(
            rows, programs, weather.functions, config=config
        )
        assert planned.buckets == many.buckets
        assert planned.metrics.udf_cost <= many.metrics.udf_cost
        assert report.planner == "calibrated"
        assert report.planner_decisions, "planner recorded no decisions"
        for decision in report.planner_decisions:
            assert set(decision) >= {
                "left",
                "right",
                "merged",
                "predicted_savings_seconds",
                "observed_savings_seconds",
                "mispredicted",
                "used_smt",
            }

    def test_related_planner_records_no_decisions(self, weather):
        programs = DOMAIN_QUERIES["weather"].make_batch(
            weather, "Mix", n=4, seed=2
        )
        report = consolidate_all(programs, weather.functions)
        assert report.planner == "related"
        assert report.planner_decisions == []

    def test_smt_budget_zero_demotes_all_merges(self, weather):
        programs = DOMAIN_QUERIES["weather"].make_batch(
            weather, "Mix", n=8, seed=2
        )
        report = consolidate_all(
            programs,
            weather.functions,
            planner="calibrated",
            smt_budget_seconds=0.0,
        )
        merges = [d for d in report.planner_decisions if d["merged"]]
        assert merges
        assert all(not d["used_smt"] for d in merges)
        # A demoted merge is still a sound merge.
        rows = list(weather.rows[:40])
        many = run_where_many(rows, programs, weather.functions)
        cfg = ExecutionConfig()
        from repro.naiad.linq import from_collection

        result = (
            from_collection(rows, config=cfg)
            .where_consolidated(
                report.program, [p.pid for p in programs], weather.functions
            )
            .run(cfg)
        )
        assert result.buckets == many.buckets

    def test_planner_decisions_land_in_provenance(self, weather):
        programs = DOMAIN_QUERIES["weather"].make_batch(
            weather, "Mix", n=8, seed=2
        )
        report = consolidate_all(
            programs, weather.functions, planner="calibrated", provenance=True
        )
        heuristics = [
            h
            for tree in report.derivations
            for h in tree.root.heuristics
            if h.kind == "planner"
        ]
        assert heuristics, "no planner heuristic recorded on any derivation"
        assert all("predicted=" in h.detail for h in heuristics)

    def test_explain_carries_planner_section(self, weather):
        from repro.provenance import explain_batch, render_text

        report = explain_batch(
            "weather",
            pair=(0, 1),
            family="Mix",
            n=4,
            seed=1,
            rows=10,
            planner="calibrated",
        )
        assert report.planner == "calibrated"
        assert report.planner_decisions
        text = render_text(report)
        assert "planner (calibrated):" in text
        assert "predicted" in text
        assert report.to_dict()["planner"] == "calibrated"

    def test_config_validation(self):
        assert PLANNERS == ("related", "calibrated")
        with pytest.raises(ValueError):
            ExecutionConfig(planner="bogus")
        with pytest.raises(ValueError):
            ExecutionConfig(smt_budget_seconds=-1.0)

    def test_unknown_planner_rejected_by_consolidate_all(self, weather):
        programs = DOMAIN_QUERIES["weather"].make_batch(
            weather, "Mix", n=2, seed=1
        )
        with pytest.raises(ValueError):
            consolidate_all(programs, weather.functions, planner="bogus")

    def test_registry_metrics_doc_reports_calibration(self, weather):
        from repro.service.registry import QueryRegistry

        model = CalibratedCostModel.uniform(DEFAULT_COST_MODEL)
        registry = QueryRegistry(
            weather.functions,
            config=ExecutionConfig(planner="calibrated", calibration=model),
        )
        doc = registry.metrics_doc()
        assert doc["planner"] == "calibrated"
        assert doc["calibration_source"] == "uniform"
        assert doc["calibration_staleness_seconds"] == 0.0
        assert doc["planner_merges_total"] == 0
