"""Tests for term/formula canonicalisation."""

from hypothesis import given, settings, strategies as st

from repro.smt import (
    Eq,
    FALSE_F,
    FAnd,
    FNot,
    FOr,
    Le,
    Lin,
    Num,
    TRUE_F,
    app,
    as_linear,
    eq_f,
    fand,
    fnot,
    for_,
    free_syms,
    from_linear,
    le_f,
    lt_f,
    ne_f,
    num,
    rename_syms,
    sym,
    t_add,
    t_mul,
    t_neg,
    t_scale,
    t_sub,
)

x, y, z = sym("x"), sym("y"), sym("z")


class TestLinearNormalForm:
    def test_add_constants_folds(self):
        assert t_add(num(2), num(3)) == num(5)

    def test_sub_self_is_zero(self):
        assert t_sub(x, x) == num(0)

    def test_coefficients_merge(self):
        t = t_add(t_add(x, x), x)
        assert t == t_scale(3, x)

    def test_single_unit_monomial_is_atom(self):
        assert t_add(x, num(0)) == x

    def test_scale_by_zero(self):
        assert t_scale(0, t_add(x, y)) == num(0)

    def test_ordering_canonical(self):
        assert t_add(x, y) == t_add(y, x)

    def test_mul_constant_linearises(self):
        assert t_mul(num(3), t_add(x, num(1))) == t_add(t_scale(3, x), num(3))

    def test_mul_nonlinear_uninterpreted_and_commutative(self):
        assert t_mul(x, y) == t_mul(y, x)
        assert t_mul(x, y).func == "@mul"

    def test_as_from_linear_inverse(self):
        t = t_add(t_scale(2, x), t_add(t_scale(-3, y), num(7)))
        const, coeffs = as_linear(t)
        assert from_linear(const, coeffs) == t


class TestAtomCanonicalisation:
    def test_le_trivially_true(self):
        assert le_f(num(1), num(2)) == TRUE_F

    def test_le_trivially_false(self):
        assert le_f(num(3), num(2)) == FALSE_F

    def test_le_integer_tightening(self):
        # 2x <= 3  ==>  x <= 1
        f = le_f(t_scale(2, x), num(3))
        assert f == le_f(x, num(1))

    def test_lt_is_le_plus_one(self):
        assert lt_f(x, y) == le_f(t_add(x, num(1)), y)

    def test_eq_gcd_refutation(self):
        # 2x = 3 has no integer solution
        assert eq_f(t_scale(2, x), num(3)) == FALSE_F

    def test_eq_sign_canonical(self):
        assert eq_f(x, y) == eq_f(y, x)

    def test_eq_reflexive_true(self):
        assert eq_f(t_add(x, num(1)), t_add(num(1), x)) == TRUE_F

    def test_ne_of_identical_false(self):
        assert ne_f(x, x) == FALSE_F


class TestConnectives:
    def test_fnot_involution(self):
        f = eq_f(x, y)
        assert fnot(fnot(f)) == f

    def test_fnot_le_normalises(self):
        # not(x <= 0)  ==  1 <= x
        f = fnot(le_f(x, num(0)))
        assert isinstance(f, Le)
        assert f == le_f(num(1), x)

    def test_fand_flattens_and_dedups(self):
        f = fand(eq_f(x, y), fand(eq_f(x, y), le_f(x, num(3))))
        assert isinstance(f, FAnd)
        assert len(f.args) == 2

    def test_fand_false_absorbs(self):
        assert fand(eq_f(x, y), FALSE_F) == FALSE_F

    def test_for_true_absorbs(self):
        assert for_(eq_f(x, y), TRUE_F) == TRUE_F

    def test_empty_connectives(self):
        assert fand() == TRUE_F
        assert for_() == FALSE_F

    def test_singleton_collapses(self):
        f = le_f(x, y)
        assert fand(f) == f
        assert for_(f) == f


class TestSubstitution:
    def test_rename_in_atoms(self):
        f = le_f(x, y)
        g = rename_syms(f, {"x": z})
        assert g == le_f(z, y)

    def test_rename_inside_app(self):
        f = eq_f(app("f", x), num(0))
        g = rename_syms(f, {"x": t_add(y, num(1))})
        assert g == eq_f(app("f", t_add(y, num(1))), num(0))

    def test_rename_recanonicalises(self):
        # x - y = 0 with y := x  becomes true
        f = eq_f(x, y)
        assert rename_syms(f, {"y": x}) == TRUE_F

    def test_free_syms(self):
        f = fand(le_f(x, y), eq_f(app("f", z), num(1)))
        assert free_syms(f) == {"x", "y", "z"}


@given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-5, 5))
@settings(max_examples=200)
def test_linear_arith_matches_python(a, b, k):
    t = t_add(t_scale(k, t_add(t_scale(a, x), num(b))), t_scale(-k * a, x))
    # k*(a*x + b) - k*a*x == k*b
    assert t == num(k * b)
