"""Additional coverage for experiment reporting structures."""

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import (
    ExperimentResult,
    Figure9Report,
    Figure10Report,
    LatencyReport,
    ScalabilityPoint,
    format_table,
)


def result(domain="news", family="Q1", many_udf=1000, cons_udf=250, cons_s=0.1):
    return ExperimentResult(
        domain=domain,
        family=family,
        n_udfs=10,
        rows=100,
        many_udf_cost=many_udf,
        cons_udf_cost=cons_udf,
        many_total_cost=many_udf + 500,
        cons_total_cost=cons_udf + 500,
        many_wall=1.0,
        cons_wall=0.3,
        consolidation_seconds=cons_s,
    )


class TestExperimentResult:
    def test_speedups(self):
        r = result()
        assert r.udf_speedup == 4.0
        assert r.total_speedup == 2.0
        assert r.udf_speedup_wall == pytest.approx(1.0 / 0.3)

    def test_total_wall_includes_consolidation(self):
        r = result(cons_s=0.7)
        assert r.total_speedup_wall == pytest.approx(1.0 / (0.3 + 0.7))

    def test_consolidation_fraction(self):
        r = result(cons_s=0.3)
        assert r.consolidation_fraction == pytest.approx(0.5)

    def test_row_dict(self):
        row = result().row()
        assert row["udf_speedup"] == 4.0
        assert row["domain"] == "news"


class TestFigure9Report:
    def test_aggregates(self):
        report = Figure9Report(results=[result(cons_udf=250), result(cons_udf=500)])
        agg = report.aggregates()
        assert agg["udf_min"] == 2.0
        assert agg["udf_max"] == 4.0
        assert agg["udf_avg"] == 3.0


class TestFigure10Report:
    def test_growth_ratios(self):
        points = [
            ScalabilityPoint(10, 100, 150, 50, 90, 0.1, 0.05, 0.01),
            ScalabilityPoint(100, 1000, 1050, 120, 160, 1.0, 0.1, 0.2),
        ]
        report = Figure10Report(points=points)
        growth = report.growth_ratios()
        assert growth["n_ratio"] == 10
        assert growth["many_udf_growth"] == 10.0
        assert growth["cons_udf_growth"] == pytest.approx(2.4)


class TestLatencyReport:
    def test_mean_and_summary(self):
        report = LatencyReport(
            n_udfs=2,
            rows=5,
            sequential={"a": 10.0, "b": 30.0},
            consolidated={"a": 5.0, "b": 7.0},
            prioritized={"a": 4.0, "b": 8.0},
            priority=("a",),
        )
        assert report.mean(report.sequential) == 20.0
        summary = report.summary()
        assert summary["a_prioritized"] == 4.0
        assert summary["consolidated_mean"] == 6.0

    def test_empty_mean(self):
        assert LatencyReport(0, 0).mean({}) == 0.0


class TestFormatTable:
    def test_column_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert text.splitlines()[0].split() == ["c", "a"]

    def test_empty(self):
        assert format_table([]) == "(no rows)"
