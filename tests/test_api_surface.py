"""The stable facade surface, pinned.

``repro.api`` is the contract both the CLI and the service build on;
these golden tests make any signature change an explicit, reviewed act —
the diff shows exactly which verb moved.  The deprecation-cycle tests pin
the *message shape* of every legacy-kwarg warning (it must name the
replacement ``ExecutionConfig`` field and the scheduled removal version)
and the config validation errors (they must enumerate the valid values).
"""

import inspect

import pytest

import repro
import repro.api as api
from repro.config import (
    EXECUTORS,
    LEGACY_KWARG_REMOVAL,
    ExecutionConfig,
    ServiceConfig,
    resolve_config,
)

# ---------------------------------------------------------------------------
# the facade: frozen __all__ and golden signatures


GOLDEN_SIGNATURES = {
    "consolidate": (
        "(programs: 'Sequence[Program]', functions: 'Optional[FunctionTable]'"
        " = None, *, options: 'Optional[ConsolidationOptions]' = None, "
        "config: 'Optional[ExecutionConfig]' = None) -> 'ConsolidationReport'"
    ),
    "explain": (
        "(target: 'Union[QueryRegistry, Sequence[Program]]', functions: "
        "'Optional[FunctionTable]' = None, *, options: "
        "'Optional[ConsolidationOptions]' = None, config: "
        "'Optional[ExecutionConfig]' = None) -> 'dict'"
    ),
    "register": (
        "(registry: 'QueryRegistry', query: 'Union[Program, str]', *, "
        "tenant: 'str' = 'default') -> 'RegisteredQuery'"
    ),
    "run": (
        "(rows: 'Sequence[Any]', programs: 'Sequence[Program]', functions: "
        "'Optional[FunctionTable]' = None, *, consolidated: 'bool' = True, "
        "options: 'Optional[ConsolidationOptions]' = None, config: "
        "'Optional[ExecutionConfig]' = None) -> 'RunResult'"
    ),
    "unregister": "(registry: 'QueryRegistry', pid: 'str') -> 'None'",
}


def test_facade_all_is_frozen_tuple():
    assert isinstance(api.__all__, tuple)
    assert api.__all__ == ("consolidate", "explain", "register", "run", "unregister")


def test_facade_signatures_are_golden():
    for name, expected in GOLDEN_SIGNATURES.items():
        actual = str(inspect.signature(getattr(api, name)))
        assert actual == expected, f"repro.api.{name} signature drifted:\n{actual}"


def test_facade_covers_all_verbs_and_nothing_else():
    assert set(GOLDEN_SIGNATURES) == set(api.__all__)


def test_facade_exported_from_package_root():
    assert "api" in repro.__all__
    assert repro.api is api


def test_every_facade_verb_has_type_hints():
    for name in api.__all__:
        signature = inspect.signature(getattr(api, name))
        assert signature.return_annotation is not inspect.Signature.empty
        for parameter in signature.parameters.values():
            assert parameter.annotation is not inspect.Parameter.empty, (
                f"repro.api.{name} parameter {parameter.name} lost its hint"
            )


# ---------------------------------------------------------------------------
# the deprecation cycle: warnings name the field and the removal version


def test_legacy_kwarg_warning_names_field_and_removal_version():
    with pytest.warns(DeprecationWarning) as caught:
        resolved = resolve_config(None, workers=2)
    assert resolved.workers == 2
    message = str(caught[0].message)
    assert "'workers'" in message
    assert "ExecutionConfig(workers=2)" in message
    assert f"removed in repro {LEGACY_KWARG_REMOVAL}" in message
    assert "config=" in message


def test_legacy_kwarg_removal_version_is_pinned():
    # Finishing the cycle (actually removing the kwargs) must update this
    # test along with every call site.
    assert LEGACY_KWARG_REMOVAL == "2.0"


def test_each_legacy_kwarg_warns_once_with_its_own_name():
    with pytest.warns(DeprecationWarning) as caught:
        resolve_config(None, workers=2, executor="thread")
    messages = sorted(str(w.message) for w in caught)
    assert len(messages) == 2
    assert any("'executor'" in m and "executor='thread'" in m for m in messages)
    assert any("'workers'" in m for m in messages)


def test_resolve_config_without_legacy_kwargs_is_silent(recwarn):
    resolved = resolve_config(ExecutionConfig(workers=3))
    assert resolved.workers == 3
    assert not [w for w in recwarn.list if w.category is DeprecationWarning]


# ---------------------------------------------------------------------------
# config validation errors enumerate the valid values


def test_execution_config_backend_error_enumerates_choices():
    with pytest.raises(ValueError, match="choose from"):
        ExecutionConfig(backend="gpu")


def test_execution_config_executor_error_enumerates_choices():
    with pytest.raises(ValueError) as excinfo:
        ExecutionConfig(executor="fibers")
    for executor in EXECUTORS:
        assert executor in str(excinfo.value)


def test_execution_config_worker_errors_state_the_valid_range():
    with pytest.raises(ValueError, match=r"workers must be an integer >= 1, got 0"):
        ExecutionConfig(workers=0)
    with pytest.raises(ValueError, match=r"max_workers must be an integer >= 1"):
        ExecutionConfig(max_workers=-2)


def test_service_config_validation_errors_enumerate_values():
    with pytest.raises(ValueError, match=r"0\.\.65535"):
        ServiceConfig(port=70000)
    with pytest.raises(ValueError, match=r">= 1\.0"):
        ServiceConfig(rebalance_factor=0.5)
    with pytest.raises(ValueError, match=r">= 0 \(0 disables"):
        ServiceConfig(plan_cache_size=-1)


def test_service_config_is_frozen_and_evolvable():
    config = ServiceConfig()
    with pytest.raises(Exception):
        config.port = 1234  # type: ignore[misc]
    assert config.evolve(port=0).port == 0
    assert config.port == 8765
