"""The columnar batch backend: cost parity, fallbacks, cache, and faults.

The vectorized backend's contract is *bit-identical observability*: for
any program batch, ``backend="vectorized"`` must produce exactly the
buckets and exactly the Figure-2 costs of the compiled per-row backend —
including on merged ``whereConsolidated`` plans, under prefilter guards,
and after every rung of the fallback ladder.  These tests pin that
contract per domain family, exercise the recorded (never raised)
degradations, and hold the fault seams to their documented behaviour:
a kernel-translation crash degrades invisibly, a mis-masked ``If`` is
caught by the three-way differential oracle.
"""

import pytest

from repro import datasets as ds
from repro.config import ExecutionConfig
from repro.lang import parse_program
from repro.lang.compile import make_runner
from repro.lang.vectorize import (
    clear_vectorize_cache,
    columns_from_records,
    vectorize_cached,
    vectorize_program,
)
from repro.naiad import from_collection, run_where_consolidated, run_where_many
from repro.queries import DOMAIN_QUERIES
from repro.service import QueryRegistry
from repro.telemetry import Telemetry
from repro.testing import (
    case_inputs,
    generate_case,
    run_battery,
    schema_dataset,
    vectorize_crash,
    vectorize_mismask,
)

_MAKERS = {
    "weather": lambda: ds.generate_weather(cities=15),
    "flight": lambda: ds.generate_flights(airlines=15),
    "news": lambda: ds.generate_news(articles=40),
    "twitter": lambda: ds.generate_twitter(tweets=40),
    "stock": lambda: ds.generate_stocks(companies=8, total_daily_rows=300),
}


@pytest.fixture(scope="module")
def domain_datasets():
    return {name: make() for name, make in _MAKERS.items()}


def _buckets(result):
    return {pid: sorted(map(repr, rows)) for pid, rows in result.buckets.items()}


# -- the required regression: whereConsolidated cost parity per domain ------


@pytest.mark.parametrize("domain", sorted(_MAKERS))
def test_whereconsolidated_per_record_cost_parity(domain, domain_datasets):
    """Per-record cost on the merged plan is identical compiled vs vectorized.

    This is the regression pin for the whole backend: equal buckets AND
    equal exact udf cost over the same records means equal per-record
    cost, family by family, on every evaluation domain.
    """

    dataset = domain_datasets[domain]
    module = DOMAIN_QUERIES[domain]
    rows = dataset.rows[:30]
    for family in module.FAMILY_NAMES:
        batch = module.make_batch(dataset, family, n=3, seed=7)
        compiled, _ = run_where_consolidated(
            rows, batch, dataset.functions,
            config=ExecutionConfig(backend="compiled"),
        )
        vectorized, _ = run_where_consolidated(
            rows, batch, dataset.functions,
            config=ExecutionConfig(backend="vectorized"),
        )
        tag = f"{domain}/{family}"
        assert _buckets(vectorized) == _buckets(compiled), tag
        assert vectorized.metrics.udf_cost == compiled.metrics.udf_cost, tag
        assert (
            vectorized.metrics.per_worker_udf == compiled.metrics.per_worker_udf
        ), tag
        assert (
            vectorized.metrics.total_cost == compiled.metrics.total_cost
        ), tag


@pytest.mark.parametrize("domain", sorted(_MAKERS))
def test_wheremany_parity_with_prefilter(domain, domain_datasets):
    """The φ-guard composes: guard verdicts become a column mask, and the
    compacted batch still reproduces the compiled+prefilter run exactly."""

    dataset = domain_datasets[domain]
    module = DOMAIN_QUERIES[domain]
    family = module.FAMILY_NAMES[0]
    batch = module.make_batch(dataset, family, n=3, seed=7)
    rows = dataset.rows[:30]
    compiled = run_where_many(
        rows, batch, dataset.functions,
        config=ExecutionConfig(backend="compiled", prefilter=True),
    )
    vectorized = run_where_many(
        rows, batch, dataset.functions,
        config=ExecutionConfig(backend="vectorized", prefilter=True),
    )
    assert _buckets(vectorized) == _buckets(compiled)
    assert vectorized.metrics.udf_cost == compiled.metrics.udf_cost
    assert vectorized.metrics.per_worker_total == compiled.metrics.per_worker_total


# -- the fallback ladder is recorded, never raised --------------------------


UNBOUNDED_SRC = """
program ub(row) {
  s := 0;
  while (s < yearly_rainfall(@row)) {
    s := s + 7;
  }
  notify ub (s > 20);
}
"""


class TestFallbackLadder:
    def test_unbounded_shape_degrades_to_per_row(self, domain_datasets):
        dataset = domain_datasets["weather"]
        program = parse_program(UNBOUNDED_SRC)
        vp = vectorize_program(program, dataset.functions)
        assert not vp.vectorized
        assert vp.shape == "unbounded"
        assert "unbounded" in vp.degraded_reason
        rows = dataset.rows[:12]
        batch = vp.run_batch(columns_from_records(program, rows), len(rows))
        assert batch.fallback
        assert batch.fallback_reason == vp.degraded_reason
        runner = make_runner(program, dataset.functions, backend="compiled")
        for i, row in enumerate(rows):
            want = runner({"row": row})
            assert batch.costs[i] == want.cost
            assert batch.notifications_at(i) == want.notifications
            assert batch.notification_costs_at(i) == want.notification_costs

    def test_fallback_is_counted(self, domain_datasets):
        dataset = domain_datasets["weather"]
        program = parse_program(UNBOUNDED_SRC)
        telemetry = Telemetry.capture()
        vp = vectorize_program(program, dataset.functions, telemetry=telemetry)
        rows = dataset.rows[:9]
        vp.run_batch(columns_from_records(program, rows), len(rows))
        assert telemetry.counter("vectorized_fallbacks_total").value == 1
        assert (
            telemetry.counter("vectorized_fallback_records_total").value
            == len(rows)
        )

    def test_vectorized_run_emits_batch_series(self, domain_datasets):
        dataset = domain_datasets["weather"]
        module = DOMAIN_QUERIES["weather"]
        batch = module.make_batch(dataset, "Q1", n=3, seed=7)
        cfg = ExecutionConfig(
            backend="vectorized", telemetry=Telemetry.capture()
        )
        run_where_many(dataset.rows[:20], batch, dataset.functions, config=cfg)
        reg = cfg.telemetry
        assert reg.counter("vectorized_batches_total").value > 0
        assert reg.counter("vectorized_records_total").value > 0
        assert reg.histogram("vectorized_batch_size").count > 0
        assert reg.counter("vectorized_fallbacks_total").value == 0


class TestPlanCache:
    def test_hit_and_miss_are_counted(self, domain_datasets):
        dataset = domain_datasets["weather"]
        module = DOMAIN_QUERIES["weather"]
        program = module.make_batch(dataset, "Q1", n=1, seed=7)[0]
        clear_vectorize_cache()
        telemetry = Telemetry.capture()
        first = vectorize_cached(
            program, dataset.functions, telemetry=telemetry
        )
        again = vectorize_cached(
            program, dataset.functions, telemetry=telemetry
        )
        assert again is first
        assert telemetry.counter("vectorized_plan_cache_misses_total").value == 1
        assert telemetry.counter("vectorized_plan_cache_hits_total").value == 1

    def test_unvectorizable_is_counted(self, domain_datasets):
        dataset = domain_datasets["weather"]
        program = parse_program(UNBOUNDED_SRC)
        clear_vectorize_cache()
        telemetry = Telemetry.capture()
        vp = vectorize_cached(program, dataset.functions, telemetry=telemetry)
        assert not vp.vectorized
        assert telemetry.counter("vectorized_unvectorizable_total").value == 1


# -- the service serves the vectorized backend ------------------------------


def test_service_registry_runs_vectorized(domain_datasets):
    dataset = domain_datasets["weather"]
    module = DOMAIN_QUERIES["weather"]
    batch = module.make_batch(dataset, "Mix", n=4, seed=11)
    rows = dataset.rows[:25]
    results = {}
    for backend in ("compiled", "vectorized"):
        registry = QueryRegistry(
            dataset.functions, config=ExecutionConfig(backend=backend)
        )
        for program in batch:
            registry.register(program)
        results[backend] = registry.run(rows)
    assert _buckets(results["vectorized"]) == _buckets(results["compiled"])
    assert (
        results["vectorized"].metrics.udf_cost
        == results["compiled"].metrics.udf_cost
    )


# -- fault seams ------------------------------------------------------------


WEATHER = schema_dataset("weather")
PROGRAMS = generate_case(2, "weather", 3, n_programs=4)
INPUTS = case_inputs("weather")


class TestVectorizeFaults:
    def test_translation_crash_degrades_identically(self):
        """An injected kernel-translation crash must be invisible except in
        the fallback telemetry: every batch rides the per-row rung."""

        baseline = run_where_many(
            WEATHER.rows[:20], PROGRAMS, WEATHER.functions,
            config=ExecutionConfig(backend="vectorized"),
        )
        cfg = ExecutionConfig(
            backend="vectorized", telemetry=Telemetry.capture()
        )
        with vectorize_crash():
            crashed = run_where_many(
                WEATHER.rows[:20], PROGRAMS, WEATHER.functions, config=cfg
            )
        assert _buckets(crashed) == _buckets(baseline)
        assert crashed.metrics.udf_cost == baseline.metrics.udf_cost
        assert cfg.telemetry.counter("vectorized_fallbacks_total").value > 0

    def test_battery_green_under_translation_crash(self):
        with vectorize_crash():
            result = run_battery(
                PROGRAMS, WEATHER, inputs=INPUTS,
                executors=("serial",), check_validator=False,
            )
        assert result.ok, [str(d) for d in result.discrepancies]

    def test_mismask_is_caught_by_battery(self):
        """The harness testing itself: a deliberately negated guard column
        must surface as a 'vectorized' oracle discrepancy."""

        with vectorize_mismask():
            result = run_battery(
                PROGRAMS, WEATHER, inputs=INPUTS,
                executors=("serial",), check_validator=False,
            )
        assert not result.ok
        assert "vectorized" in {d.oracle for d in result.discrepancies}
