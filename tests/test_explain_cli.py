"""``repro explain``: the report builder, renderers, and CLI front end."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.datasets import generate_weather
from repro.provenance import explain_batch, render_html, render_json, render_text

DATA = Path(__file__).resolve().parent / "data"


@pytest.fixture(scope="module")
def report():
    dataset = generate_weather(cities=12)
    return explain_batch("weather", dataset=dataset, rows=60, n=6, seed=1)


class TestExplainBatch:
    def test_report_shape(self, report):
        assert report.pair_pids == ("q0", "q1")
        assert report.merged_pid == "q0&q1"
        # One pair derivation plus the prefilter synthesis derivation.
        assert len(report.derivations) == 2
        assert report.derivations[-1].merged == "φ[q0&q1]"
        assert report.prefilter is not None
        assert report.prefilter["certificate"] in ("proved", "trivial")
        assert report.rule_counts and all(v > 0 for v in report.rule_counts.values())
        assert report.validation["merged"] == "q0&q1"
        operators = {a.operator for a in report.attributions}
        assert operators == {"whereMany[2]", "whereConsolidated[2]"}
        assert report.udf_cost_consolidated <= report.udf_cost_many

    def test_bad_arguments_raise_value_error(self):
        dataset = generate_weather(cities=12)
        with pytest.raises(ValueError, match="unknown domain"):
            explain_batch("nope")
        with pytest.raises(ValueError, match="unknown weather family"):
            explain_batch("weather", family="nope", dataset=dataset)
        with pytest.raises(ValueError, match="out of range"):
            explain_batch("weather", pair=(0, 99), dataset=dataset)
        with pytest.raises(ValueError, match="out of range"):
            explain_batch("weather", pair=(1, 1), dataset=dataset)


class TestGoldenRenderings:
    def test_text_golden(self, report):
        want = (DATA / "explain_golden.txt").read_text()
        assert render_text(report, include_timings=False) + "\n" == want

    def test_json_golden(self, report):
        want = (DATA / "explain_golden.json").read_text()
        got = render_json(report, include_timings=False) + "\n"
        assert got == want
        doc = json.loads(got)
        assert doc["rule_counts"]
        assert all(e["seconds"] == 0.0 for e in doc["smt_hotspots"])

    def test_timed_text_names_rules_and_contexts(self, report):
        text = render_text(report)
        for rule in report.rule_counts:
            assert rule in text
        assert "ms]" in text  # per-entailment timings present
        assert "Ψ = " in text

    def test_html_is_self_contained(self, report):
        html = render_html(report)
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html and "src=" not in html and "href=" not in html
        for rule in report.rule_counts:
            assert f'<span class="rule">{rule}</span>' in html
        assert "Slowest SMT entailments" in html
        assert "Cost attribution" in html
        assert "whereConsolidated[2]" in html


class TestExplainCli:
    def test_html_smoke_and_artifact(self, tmp_path, capsys):
        out = tmp_path / "explain.html"
        artifact = tmp_path / "explain.json"
        rc = main(
            [
                "explain", "--domain", "weather", "--pair", "0,1",
                "--format", "html", "--rows", "50",
                "--out", str(out), "--metrics-out", str(artifact),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "Cost attribution" in html
        doc = json.loads(artifact.read_text())
        (row,) = doc["rows"]
        assert row["pair"] == ["q0", "q1"]
        assert row["merged"] == "q0&q1"
        assert row["rule_counts"]

    def test_prometheus_artifact_carries_provenance_series(self, tmp_path, capsys):
        out = tmp_path / "explain.prom"
        rc = main(
            ["explain", "--domain", "weather", "--rows", "30",
             "--metrics-out", str(out)]
        )
        assert rc == 0
        capsys.readouterr()
        text = out.read_text()
        assert "# HELP provenance_operator_cost_ratio " in text
        assert 'provenance_operator_cost_ratio{operator="whereMany[2]"}' in text
        assert "# TYPE consolidation_pairs_total counter" in text

    def test_text_to_stdout(self, capsys):
        rc = main(["explain", "--domain", "weather", "--rows", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "explain weather/Mix pair q0+q1" in out
        assert "cost attribution" in out

    def test_bad_pair_exits(self, capsys):
        with pytest.raises(SystemExit, match="bad --pair"):
            main(["explain", "--domain", "weather", "--pair", "zero,one"])
        with pytest.raises(SystemExit, match="out of range"):
            main(["explain", "--domain", "weather", "--pair", "0,99"])
