"""Differential testing: compiled backend vs the Figure-2 interpreter.

The compiled backend's contract is *bit-identical observables*: for any
program and input, ``CompiledProgram.run`` must produce the same env,
notifications, cost and per-pid notification costs as ``Interpreter.run``
— or raise the same error class.  This suite checks that contract on the
random well-formed programs of the soundness property test (straight-line,
branching and looping), on consolidator-merged programs, on hand-written
error cases (notification clashes, unbound variables, type errors, step
budgets) and with call memoisation on both sides.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.consolidation import Consolidator
from repro.lang import (
    FunctionTable,
    Interpreter,
    InterpError,
    LibraryFunction,
    NotificationClash,
    StepLimitExceeded,
    add,
    and_,
    arg,
    assign,
    block,
    call,
    compile_program,
    eq,
    gt,
    if_,
    ite_notify,
    lift,
    lt,
    notify,
    or_,
    program,
    var,
    while_,
)

from .test_soundness_property import FT, udf_programs

_POINTS = st.lists(
    st.tuples(st.integers(-6, 6), st.integers(-6, 6)), min_size=3, max_size=6
)


def run_both(p, args, functions=FT, memoize=False, max_steps=2_000_000):
    """Run ``p`` under both backends; return their outcomes as comparable pairs.

    An outcome is ``("ok", (env, notifications, cost, notification_costs))``
    or ``("error", exception_class)`` — errors must agree on the class, the
    documented compiled-backend contract (messages may differ only when
    several dynamic errors race inside one expression).
    """

    interp = Interpreter(functions, memoize_calls=memoize, max_steps=max_steps)
    try:
        r = interp.run(p, args)
        expected = ("ok", (r.env, r.notifications, r.cost, r.notification_costs))
    except InterpError as exc:
        expected = ("error", type(exc))

    compiled = compile_program(p, functions, memoize_calls=memoize, max_steps=max_steps)
    try:
        r = compiled.run(args)
        actual = ("ok", (r.env, r.notifications, r.cost, r.notification_costs))
    except InterpError as exc:
        actual = ("error", type(exc))

    assert actual == expected, f"backends diverge on {p}\nargs={args}"
    return actual


class TestRandomPrograms:
    @given(udf_programs("q1"), _POINTS)
    @settings(
        max_examples=150,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_compiled_matches_interpreter(self, p, points):
        for a, b in points:
            run_both(p, {"a": a, "b": b})

    @given(udf_programs("q1"), _POINTS)
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_compiled_matches_interpreter_with_memoisation(self, p, points):
        for a, b in points:
            run_both(p, {"a": a, "b": b}, memoize=True)

    @given(udf_programs("q1"), udf_programs("q2"), _POINTS)
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_compiled_matches_interpreter_on_merged_programs(self, p1, p2, points):
        merged = Consolidator(FT).consolidate(p1, p2)
        for a, b in points:
            outcome = run_both(merged, {"a": a, "b": b})
            if outcome[0] == "ok":
                assert set(outcome[1][1]) == {"q1", "q2"}


class TestLoops:
    def test_loop_accumulator(self):
        p = program(
            "p",
            ("n",),
            assign("i", lift(0)),
            assign("s", lift(0)),
            while_(
                lt(var("i"), arg("n")),
                block(
                    assign("s", add(var("s"), call("f", var("i")))),
                    assign("i", add(var("i"), lift(1))),
                ),
            ),
            ite_notify("p", gt(var("s"), lift(5))),
        )
        for n in range(0, 9):
            run_both(p, {"n": n})

    def test_notify_inside_loop_clashes_on_second_iteration(self):
        p = program(
            "p",
            ("n",),
            assign("i", lift(0)),
            while_(
                lt(var("i"), arg("n")),
                block(notify("p", lt(var("i"), lift(3))), assign("i", add(var("i"), lift(1)))),
            ),
        )
        assert run_both(p, {"n": 0})[0] == "ok"  # loop body never runs
        assert run_both(p, {"n": 1})[0] == "ok"  # one notification
        assert run_both(p, {"n": 2}) == ("error", NotificationClash)

    def test_infinite_loop_exhausts_fuel_in_both_backends(self):
        p = program("p", (), assign("i", lift(0)), while_(lt(var("i"), lift(1)), block()))
        assert run_both(p, {}, max_steps=500) == ("error", StepLimitExceeded)


class TestErrorParity:
    def test_notification_clash(self):
        p = program("p", ("n",), notify("p", lt(arg("n"), lift(3))), notify("p", lt(arg("n"), lift(5))))
        assert run_both(p, {"n": 1}) == ("error", NotificationClash)

    def test_missing_argument(self):
        p = program("p", ("n",), ite_notify("p", lt(arg("n"), lift(3))))
        assert run_both(p, {}) == ("error", InterpError)

    def test_unbound_variable(self):
        p = program("p", ("n",), if_(lt(arg("n"), lift(0)), assign("x", lift(1)), block()), assign("y", add(var("x"), lift(1))))
        assert run_both(p, {"n": 3}) == ("error", InterpError)
        assert run_both(p, {"n": -3})[0] == "ok"

    def test_unbound_variable_message_names_the_source_variable(self):
        p = program("p", (), assign("y", var("mystery")))
        compiled = compile_program(p, FT)
        with pytest.raises(InterpError, match="unbound variable 'mystery'"):
            compiled.run({})

    def test_arithmetic_type_error(self):
        p = program("p", ("n",), assign("x", add(eq(arg("n"), lift(1)), lift(2))))
        assert run_both(p, {"n": 1}) == ("error", InterpError)

    def test_notify_of_non_boolean(self):
        p = program("p", ("n",), notify("p", add(arg("n"), lift(1))))
        assert run_both(p, {"n": 1}) == ("error", InterpError)

    def test_branch_on_non_boolean(self):
        p = program("p", ("n",), if_(arg("n"), assign("x", lift(1)), block()))
        assert run_both(p, {"n": 1}) == ("error", InterpError)

    def test_connectives_evaluate_both_operands(self):
        """``or`` must not short-circuit: the right operand's call still runs."""

        calls = []
        ft = FunctionTable(
            [LibraryFunction("probe", lambda x: calls.append(x) or (x > 0), cost=5)]
        )
        p = program(
            "p",
            ("n",),
            ite_notify("p", or_(lt(arg("n"), lift(100)), call("probe", arg("n")))),
        )
        run_both(p, {"n": 4}, functions=ft)
        # interpreter + compiled each evaluated the call exactly once
        assert calls == [4, 4]
        calls.clear()
        run_both(p, {"n": 4}, functions=ft, memoize=True)
        assert calls == [4, 4]

    def test_failing_library_call(self):
        def boom(x):
            raise RuntimeError("no")

        ft = FunctionTable([LibraryFunction("boom", boom, cost=5)])
        p = program("p", ("n",), assign("x", call("boom", arg("n"))))
        assert run_both(p, {"n": 1}, functions=ft) == ("error", InterpError)


class TestLatencyCapture:
    def test_notification_costs_match_on_multi_notify_programs(self):
        p = program(
            "p",
            ("n",),
            assign("x", call("f", arg("n"))),
            notify("q1", lt(var("x"), lift(0))),
            assign("y", call("g", var("x"))),
            notify("q2", and_(lt(var("y"), lift(5)), gt(var("x"), lift(-8)))),
        )
        for n in range(-4, 5):
            outcome = run_both(p, {"n": n})
            assert outcome[0] == "ok"
            _, nots, cost, ncosts = outcome[1]
            assert set(ncosts) == {"q1", "q2"}
            assert ncosts["q1"] < ncosts["q2"] <= cost
